// Selftest for the siolint rule engine: every rule must fire on a seeded
// violation fixture and stay quiet on the matching clean variant, and the
// `siolint:allow` suppression mechanism must silence findings in place.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "siolint/rules.hpp"

namespace {

using siolint::Diagnostic;
using siolint::SourceFile;

std::vector<Diagnostic> lint_one(const std::string& path, const std::string& content) {
  return siolint::lint({SourceFile{path, content}});
}

std::set<std::string> rules_fired(const std::vector<Diagnostic>& diags) {
  std::set<std::string> out;
  for (const auto& d : diags) out.insert(d.rule);
  return out;
}

TEST(SiolintWallClock, FiresOnChronoClocksAndTimeCalls) {
  const auto diags = lint_one("src/sim/bad.cpp",
                              "auto t = std::chrono::steady_clock::now();\n"
                              "auto u = time(nullptr);\n"
                              "gettimeofday(&tv, nullptr);\n");
  ASSERT_EQ(diags.size(), 3u);
  EXPECT_EQ(diags[0].rule, "wall-clock");
  EXPECT_EQ(diags[0].line, 1);
  EXPECT_EQ(diags[1].line, 2);
  EXPECT_EQ(diags[2].line, 3);
}

TEST(SiolintWallClock, IgnoresSimTimeIdentifiers) {
  const auto diags = lint_one("src/pablo/ok.cpp",
                              "auto a = core_.total_io_time();\n"
                              "auto b = disk.busy_time();\n"
                              "auto c = net.payload_time(bytes);\n"
                              "// time(nullptr) in a comment is fine\n"
                              "auto s = std::string(\"time(\");\n");
  EXPECT_TRUE(diags.empty());
}

TEST(SiolintRawRandom, FiresOnRandAndRandomDevice) {
  const auto diags = lint_one("bench/bad.cpp",
                              "int a = rand();\n"
                              "std::random_device rd;\n"
                              "srand(42);\n");
  ASSERT_EQ(diags.size(), 3u);
  for (const auto& d : diags) EXPECT_EQ(d.rule, "raw-random");
}

TEST(SiolintRawRandom, IgnoresTheSeededRng) {
  const auto diags = lint_one("src/apps/ok.cpp",
                              "sim::Rng rng(seed);\n"
                              "auto x = rng.uniform_int(0, 7);\n"
                              "auto y = rng.exponential(mean);\n");
  EXPECT_TRUE(diags.empty());
}

TEST(SiolintGetenv, FiresOnlyInsideSrc) {
  const std::string code = "const char* home = getenv(\"HOME\");\n";
  EXPECT_EQ(rules_fired(lint_one("src/core/bad.cpp", code)),
            (std::set<std::string>{"getenv"}));
  EXPECT_TRUE(lint_one("tests/ok_test.cpp", code).empty());
}

TEST(SiolintBannedHeader, FiresOnThreadingHeadersInSrc) {
  const auto diags = lint_one("src/pfs/bad.cpp",
                              "#include <thread>\n"
                              "#include <mutex>\n"
                              "#include <vector>\n");
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags[0].rule, "banned-header");
  EXPECT_EQ(diags[1].line, 2);
}

TEST(SiolintBannedHeader, RandomAllowedOnlyInSimRandom) {
  const std::string inc = "#include <random>\n";
  EXPECT_EQ(rules_fired(lint_one("src/machine/bad.cpp", inc)),
            (std::set<std::string>{"banned-header"}));
  EXPECT_TRUE(lint_one("src/sim/random.cpp", inc).empty());
  EXPECT_TRUE(lint_one("src/sim/random.hpp", inc).empty());
  EXPECT_TRUE(lint_one("tests/ok_test.cpp", inc).empty());  // scope is src/ only
}

TEST(SiolintDiscardedTask, FiresOnBareStatementCall) {
  const std::string decl = "sim::Task<void> drain_queue(int n);\n";
  const auto diags = siolint::lint({
      SourceFile{"src/pfs/decl.hpp", decl},
      SourceFile{"src/pfs/bad.cpp",
                 "void f(Server& s) {\n"
                 "  s.drain_queue(3);\n"
                 "}\n"},
  });
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "discarded-task");
  EXPECT_EQ(diags[0].file, "src/pfs/bad.cpp");
  EXPECT_EQ(diags[0].line, 2);
}

TEST(SiolintDiscardedTask, QuietWhenAwaitedSpawnedOrAssigned) {
  const auto diags = siolint::lint({
      SourceFile{"src/pfs/decl.hpp", "sim::Task<void> drain_queue(int n);\n"},
      SourceFile{"src/pfs/ok.cpp",
                 "sim::Task<void> g(Engine& e, Server& s) {\n"
                 "  co_await s.drain_queue(1);\n"
                 "  e.spawn(s.drain_queue(2));\n"
                 "  auto t = s.drain_queue(3);\n"
                 "  co_await std::move(t);\n"
                 "}\n"},
  });
  EXPECT_TRUE(diags.empty());
}

TEST(SiolintDiscardedTask, AmbiguousNamesAreSkipped) {
  // `pump` is declared both as a coroutine and as a plain void function;
  // a line-based pass cannot tell the overloads apart at a call site.
  const auto diags = siolint::lint({
      SourceFile{"src/pfs/decl.hpp",
                 "sim::Task<void> pump(int n);\n"
                 "void pump();\n"},
      SourceFile{"src/pfs/maybe.cpp", "void f(Pump& p) { p.pump(); }\n"},
  });
  EXPECT_TRUE(diags.empty());
}

TEST(SiolintAssertSideEffect, FiresOnMutatingConditions) {
  const auto diags = lint_one("src/sim/bad.cpp",
                              "SIO_ASSERT(count++ > 0);\n"
                              "SIO_ASSERT(live = busy);\n"
                              "SIO_ASSERT(total += delta);\n");
  ASSERT_EQ(diags.size(), 3u);
  for (const auto& d : diags) EXPECT_EQ(d.rule, "assert-side-effect");
}

TEST(SiolintAssertSideEffect, QuietOnComparisons) {
  const auto diags = lint_one("src/sim/ok.cpp",
                              "SIO_ASSERT(a == b);\n"
                              "SIO_ASSERT(a <= b && c >= d);\n"
                              "SIO_ASSERT(x != y);\n"
                              "SIO_ASSERT(queue.empty());\n");
  EXPECT_TRUE(diags.empty());
}

TEST(SiolintAssertSideEffect, HandlesMultiLineConditions) {
  const auto diags = lint_one("src/sim/bad.cpp",
                              "SIO_ASSERT(first == second &&\n"
                              "           bump++ < limit);\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "assert-side-effect");
  EXPECT_EQ(diags[0].line, 1);
}

TEST(SiolintUnorderedIter, FiresInOrderSensitiveDirsOnly) {
  const std::string code =
      "std::unordered_map<int, long> counts_;\n"
      "void dump(std::ostream& os) {\n"
      "  for (const auto& kv : counts_) os << kv.first;\n"
      "}\n";
  const auto in_pablo = lint_one("src/pablo/bad.cpp", code);
  ASSERT_EQ(in_pablo.size(), 1u);
  EXPECT_EQ(in_pablo[0].rule, "unordered-iter");
  EXPECT_EQ(in_pablo[0].line, 3);
  // The same pattern in src/pfs/ is out of the rule's scope (the server
  // cache is iterated only through its deterministic LRU list)...
  EXPECT_TRUE(lint_one("src/pfs/ok.cpp", code).empty());
  // ...except the journal, whose replay order is observable in recovery and
  // in the scrub report, and the checkpoint workload that drives it.
  const auto in_journal = lint_one("src/pfs/journal.cpp", code);
  ASSERT_EQ(in_journal.size(), 1u);
  EXPECT_EQ(in_journal[0].rule, "unordered-iter");
  const auto in_ckpt = lint_one("src/apps/ckpt.cpp", code);
  ASSERT_EQ(in_ckpt.size(), 1u);
  EXPECT_EQ(in_ckpt[0].rule, "unordered-iter");
  // ...and the integrity subsystem, whose scrub order and #integrity records
  // are observable in traces.
  const auto in_integrity = lint_one("src/pfs/integrity.cpp", code);
  ASSERT_EQ(in_integrity.size(), 1u);
  EXPECT_EQ(in_integrity[0].rule, "unordered-iter");
  const auto in_integrity_hdr = lint_one("src/pfs/integrity.hpp", code);
  ASSERT_EQ(in_integrity_hdr.size(), 1u);
  EXPECT_EQ(in_integrity_hdr[0].rule, "unordered-iter");
}

TEST(SiolintUnorderedIter, SeesMembersDeclaredInHeaders) {
  const auto diags = siolint::lint({
      SourceFile{"src/core/state.hpp", "std::unordered_set<std::string> labels_;\n"},
      SourceFile{"src/core/bad.cpp", "void f() { for (const auto& l : labels_) use(l); }\n"},
  });
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "unordered-iter");
}

TEST(SiolintSuppression, SameLineAllowSilences) {
  const auto diags = lint_one("src/sim/ok.cpp",
                              "int a = rand();  // siolint:allow(raw-random)\n");
  EXPECT_TRUE(diags.empty());
}

TEST(SiolintSuppression, PrecedingCommentLineAllowSilences) {
  const auto diags = lint_one("src/sim/ok.cpp",
                              "// siolint:allow(wall-clock)\n"
                              "auto t = time(nullptr);\n");
  EXPECT_TRUE(diags.empty());
}

TEST(SiolintSuppression, AllowAllSilencesEveryRule) {
  const auto diags = lint_one("src/sim/ok.cpp",
                              "auto t = time(rand());  // siolint:allow(all)\n");
  EXPECT_TRUE(diags.empty());
}

TEST(SiolintSuppression, WrongRuleNameDoesNotSilence) {
  const auto diags = lint_one("src/sim/bad.cpp",
                              "int a = rand();  // siolint:allow(wall-clock)\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "raw-random");
}

TEST(SiolintOutput, FormatAndOrdering) {
  const auto diags = siolint::lint({
      SourceFile{"src/b.cpp", "int a = rand();\n"},
      SourceFile{"src/a.cpp", "auto t = time(nullptr);\nint b = rand();\n"},
  });
  ASSERT_EQ(diags.size(), 3u);
  // Sorted by (file, line, rule).
  EXPECT_EQ(diags[0].file, "src/a.cpp");
  EXPECT_EQ(diags[0].line, 1);
  EXPECT_EQ(diags[1].file, "src/a.cpp");
  EXPECT_EQ(diags[1].line, 2);
  EXPECT_EQ(diags[2].file, "src/b.cpp");
  const std::string line = siolint::format(diags[0]);
  EXPECT_EQ(line.find("src/a.cpp:1: [wall-clock]"), 0u);
}

TEST(SiolintFaultSubsystem, OrderSensitiveScopeCoversSrcFault) {
  // The fault scheduler's iteration order reaches the trace, so src/fault/
  // is in the unordered-iter rule's scope alongside pablo and core.
  const std::string code =
      "std::unordered_map<int, long> pending_;\n"
      "void arm() { for (const auto& kv : pending_) schedule(kv.first); }\n";
  const auto diags = lint_one("src/fault/bad.cpp", code);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "unordered-iter");
}

TEST(SiolintFaultSubsystem, RepresentativeFaultCodePassesAllRules) {
  // A condensed fixture mirroring the idiom of src/fault/plan.cpp and
  // clock.cpp: seeded sim::Rng draws, engine-time scheduling, vector-ordered
  // fault iteration, and spawned record callbacks.  Every rule must
  // stay quiet — the fault subsystem introduces no nondeterminism.
  const auto diags = siolint::lint({
      SourceFile{"src/fault/fixture.hpp",
                 "#include <vector>\n"
                 "sim::Task<void> record_later(sim::Tick at, int kind);\n"
                 "struct Plan { std::vector<DiskFault> disk_failures; std::uint64_t seed; };\n"},
      SourceFile{"src/fault/fixture.cpp",
                 "#include \"fault/fixture.hpp\"\n"
                 "Plan random_plan(std::uint64_t seed, sim::Tick horizon) {\n"
                 "  sim::Rng rng(seed ^ 0xFA01D5EEDull);\n"
                 "  Plan p;\n"
                 "  p.seed = seed;\n"
                 "  const int n = rng.uniform_int(1, 3);\n"
                 "  for (int i = 0; i < n; ++i) {\n"
                 "    p.disk_failures.push_back({rng.uniform_int(0, 15), rng.jitter(horizon, 0.5)});\n"
                 "  }\n"
                 "  return p;\n"
                 "}\n"
                 "void arm(sim::Engine& engine, const Plan& plan) {\n"
                 "  SIO_ASSERT(plan.disk_failures.size() > 0);\n"
                 "  for (const auto& f : plan.disk_failures) {\n"
                 "    engine.schedule_at(f.at, [] {});\n"
                 "    engine.spawn(record_later(f.at, 0));\n"
                 "  }\n"
                 "}\n"},
  });
  EXPECT_TRUE(diags.empty());
}

TEST(SiolintQosSubsystem, OrderSensitiveScopeCoversSrcQos) {
  // Admission-queue and breaker decisions land in the SDDF trace, so any
  // hash-ordered iteration in src/qos/ would leak nondeterminism straight
  // into the two-run fingerprints; the scope covers it like pablo and core.
  const std::string code =
      "std::unordered_map<int, long> classes_;\n"
      "void pump() { for (const auto& kv : classes_) grant(kv.first); }\n";
  const auto diags = lint_one("src/qos/bad.cpp", code);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "unordered-iter");
  EXPECT_EQ(diags[0].line, 2);
}

TEST(SiolintQosSubsystem, RepresentativeQosCodePassesAllRules) {
  // A condensed fixture mirroring src/qos/qos.cpp idiom: std::map-keyed DRR
  // queues, a FIFO deque of active keys, and engine-posted grants.  Every
  // rule must stay quiet.
  const auto diags = siolint::lint({
      SourceFile{"src/qos/fixture.hpp",
                 "#include <deque>\n"
                 "#include <map>\n"
                 "using ClassKey = std::pair<int, int>;\n"
                 "struct ClassQueue { std::deque<int> q; long deficit = 0; };\n"},
      SourceFile{"src/qos/fixture.cpp",
                 "#include \"qos/fixture.hpp\"\n"
                 "std::map<ClassKey, ClassQueue> classes_;\n"
                 "std::deque<ClassKey> active_;\n"
                 "void pump(sim::Engine& engine) {\n"
                 "  while (!active_.empty()) {\n"
                 "    const ClassKey key = active_.front();\n"
                 "    active_.pop_front();\n"
                 "    for (const auto& kv : classes_) schedule(kv.first);\n"
                 "    engine.post(classes_[key].q.front());\n"
                 "  }\n"
                 "}\n"},
  });
  EXPECT_TRUE(diags.empty());
}

TEST(SiolintStdFunction, FiresOnlyInSrcSim) {
  const std::string code =
      "#include <functional>\n"
      "void defer(std::function<void()> fn);\n"
      "std::vector<std::function<int(int)>> hooks_;\n";
  const auto in_sim = lint_one("src/sim/bad.hpp", code);
  ASSERT_EQ(in_sim.size(), 2u);
  EXPECT_EQ(in_sim[0].rule, "std-function");
  EXPECT_EQ(in_sim[0].line, 2);
  EXPECT_EQ(in_sim[1].line, 3);
  // Outside the engine hot path std::function is fine (ParallelRunner jobs,
  // bench drivers, tests).
  EXPECT_TRUE(lint_one("src/core/ok.hpp", code).empty());
  EXPECT_TRUE(lint_one("bench/ok.cpp", code).empty());
}

TEST(SiolintStdFunction, QuietOnInlineCallbackAndComments) {
  const auto diags = lint_one("src/sim/ok.hpp",
                              "// std::function<void()> would allocate here\n"
                              "sim::InlineCallback cb;\n"
                              "auto s = std::string(\"std::function<\");\n");
  EXPECT_TRUE(diags.empty());
}

TEST(SiolintStdFunction, AllowMarkerSilences) {
  const auto diags = lint_one("src/sim/ok.hpp",
                              "// siolint:allow(std-function)\n"
                              "void defer(std::function<void()> fn);\n");
  EXPECT_TRUE(diags.empty());
}

TEST(SiolintUnorderedIter, ScopeCoversSrcSim) {
  // Engine bookkeeping order reaches dispatch order, so src/sim/ is in the
  // unordered-iter rule's scope too.
  const std::string code =
      "std::unordered_map<void*, int> waiters_;\n"
      "void wake() { for (const auto& kv : waiters_) resume(kv.first); }\n";
  const auto diags = lint_one("src/sim/bad.cpp", code);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "unordered-iter");
}

TEST(SiolintUnorderedIter, ScopeCoversSrcMc) {
  // Exploration results feed schedule strings and counterexamples; a
  // hash-ordered iteration in src/mc/ would make replays non-reproducible.
  const std::string code =
      "std::unordered_set<std::uint64_t> visited_;\n"
      "void dump() { for (const auto& v : visited_) print(v); }\n";
  const auto diags = lint_one("src/mc/bad.cpp", code);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "unordered-iter");
  EXPECT_EQ(diags[0].line, 2);
}

TEST(SiolintTraceVectorGrowth, FiresOnEventVectorAppendsInPablo) {
  const std::string code =
      "std::vector<TraceEvent> events_;\n"
      "std::vector<FaultEvent> faults_;\n"
      "void record(const TraceEvent& ev, const FaultEvent& f) {\n"
      "  events_.push_back(ev);\n"
      "  faults_.emplace_back(f);\n"
      "}\n";
  const auto diags = lint_one("src/pablo/bad.cpp", code);
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags[0].rule, "trace-vector-growth");
  EXPECT_EQ(diags[0].line, 4);
  EXPECT_EQ(diags[1].line, 5);
  // Outside src/pablo/ the rule does not apply (tests and benches
  // materialize traces on purpose).
  EXPECT_TRUE(lint_one("src/core/ok.cpp", code).empty());
  EXPECT_TRUE(lint_one("bench/ok.cpp", code).empty());
}

TEST(SiolintTraceVectorGrowth, SeesMembersDeclaredInHeaders) {
  // Qualified element types and dotted receivers must still match.
  const auto diags = siolint::lint({
      SourceFile{"src/pablo/decl.hpp", "struct TraceFile { std::vector<pablo::QosEvent> qos; };\n"},
      SourceFile{"src/pablo/bad.cpp", "void f(TraceFile& tf, QosEvent q) { tf.qos.push_back(q); }\n"},
  });
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "trace-vector-growth");
  EXPECT_EQ(diags[0].file, "src/pablo/bad.cpp");
}

TEST(SiolintTraceVectorGrowth, FiresOnIntegrityEventVectors) {
  const auto diags = lint_one("src/pablo/bad.cpp",
                              "std::vector<IntegrityEvent> integrity_;\n"
                              "void record(const IntegrityEvent& g) {\n"
                              "  integrity_.push_back(g);\n"
                              "}\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "trace-vector-growth");
  EXPECT_EQ(diags[0].line, 3);
}

TEST(SiolintTraceVectorGrowth, QuietOnBoundedVectorsAndParameters) {
  const auto diags = lint_one(
      "src/pablo/ok.cpp",
      "std::vector<TimeWindowSummary> windows_;\n"
      "void note(const TimeWindowSummary& w) { windows_.push_back(w); }\n"
      // A reference parameter is not an owning declaration; the local
      // summary vector is not an event container.
      "void scan(const std::vector<TraceEvent>& events) {\n"
      "  std::vector<std::uint64_t> sizes;\n"
      "  for (const auto& ev : events) sizes.push_back(ev.bytes);\n"
      "}\n");
  EXPECT_TRUE(diags.empty());
}

TEST(SiolintTraceVectorGrowth, AllowMarkerSilences) {
  const auto diags = lint_one(
      "src/pablo/ok.cpp",
      "std::vector<LossEvent> losses_;\n"
      "void record(const LossEvent& l) {\n"
      "  losses_.push_back(l);  // siolint:allow(trace-vector-growth) gated\n"
      "}\n");
  EXPECT_TRUE(diags.empty());
}

TEST(SiolintDetachedCoroutine, FiresOnRawResumeAndDestroyOutsideSrcSim) {
  const std::string code =
      "void kick(std::coroutine_handle<> h) {\n"
      "  h.resume();\n"
      "  h.destroy();\n"
      "}\n";
  const auto diags = lint_one("src/mc/bad.cpp", code);
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags[0].rule, "detached-coroutine");
  EXPECT_EQ(diags[0].line, 2);
  EXPECT_EQ(diags[1].line, 3);
  // src/sim/ owns the dispatch path: raw resumes are its job.
  EXPECT_TRUE(lint_one("src/sim/ok.cpp", code).empty());
  // Outside src/ the rule does not apply (tests drive handles directly).
  EXPECT_TRUE(lint_one("tests/ok_test.cpp", code).empty());
}

TEST(SiolintDetachedCoroutine, QuietOnEnginePostAndNonHandleCalls) {
  const auto diags = lint_one("src/mc/ok.cpp",
                              "void wake(sim::Engine& e, std::coroutine_handle<> h) {\n"
                              "  e.post(h);\n"
                              "  resume(h);\n"
                              "  job.resume(from_checkpoint);\n"
                              "}\n");
  EXPECT_TRUE(diags.empty());
}

TEST(SiolintDetachedCoroutine, AllowMarkerSilences) {
  const auto diags = lint_one("src/mc/ok.cpp",
                              "// siolint:allow(detached-coroutine)\n"
                              "h.resume();\n");
  EXPECT_TRUE(diags.empty());
}

TEST(SiolintRuleTable, ListsEveryRuleOnce) {
  std::set<std::string> ids;
  for (const auto& r : siolint::rule_table()) ids.insert(std::string(r.id));
  EXPECT_EQ(ids, (std::set<std::string>{"wall-clock", "raw-random", "getenv", "banned-header",
                                        "discarded-task", "assert-side-effect",
                                        "unordered-iter", "std-function",
                                        "detached-coroutine", "trace-vector-growth"}));
}

}  // namespace
