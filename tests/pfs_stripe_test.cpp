// Tests for the striping layout arithmetic: segment decomposition, unit and
// I/O-node assignment, and coverage/disjointness properties under
// parameterized sweeps of (offset, length) shapes.

#include <gtest/gtest.h>

#include "pfs/stripe.hpp"

namespace sio::pfs {
namespace {

constexpr std::uint64_t kUnit = 64 * 1024;

TEST(StripeLayout, UnitAssignmentIsRoundRobin) {
  StripeLayout l(kUnit, 16);
  for (std::uint64_t u = 0; u < 64; ++u) {
    EXPECT_EQ(l.io_node_of(u), static_cast<int>(u % 16));
    EXPECT_EQ(l.local_unit(u), u / 16);
  }
}

TEST(StripeLayout, UnitOfOffset) {
  StripeLayout l(kUnit, 16);
  EXPECT_EQ(l.unit_of(0), 0u);
  EXPECT_EQ(l.unit_of(kUnit - 1), 0u);
  EXPECT_EQ(l.unit_of(kUnit), 1u);
  EXPECT_EQ(l.unit_of(10 * kUnit + 5), 10u);
}

TEST(StripeLayout, SmallRequestIsOneSegment) {
  StripeLayout l(kUnit, 16);
  const auto segs = l.map(100, 2048);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].io_node, 0);
  EXPECT_EQ(segs[0].unit_index, 0u);
  EXPECT_EQ(segs[0].offset_in_unit, 100u);
  EXPECT_EQ(segs[0].length, 2048u);
  EXPECT_EQ(segs[0].file_offset, 100u);
}

TEST(StripeLayout, UnitAlignedDoubleStripeHitsTwoNodes) {
  StripeLayout l(kUnit, 16);
  const auto segs = l.map(0, 2 * kUnit);
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0].io_node, 0);
  EXPECT_EQ(segs[1].io_node, 1);
  EXPECT_EQ(l.spread(0, 2 * kUnit), 2);
}

TEST(StripeLayout, StraddlingRequestSplitsAtBoundary) {
  StripeLayout l(kUnit, 16);
  const auto segs = l.map(kUnit - 100, 300);
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0].length, 100u);
  EXPECT_EQ(segs[1].length, 200u);
  EXPECT_EQ(segs[1].offset_in_unit, 0u);
}

TEST(StripeLayout, MoreUnitsThanNodesWrapsAround) {
  StripeLayout l(kUnit, 4);
  const auto segs = l.map(0, 6 * kUnit);
  ASSERT_EQ(segs.size(), 6u);
  EXPECT_EQ(segs[4].io_node, 0);
  EXPECT_EQ(segs[4].unit_index, 4u);
  EXPECT_EQ(l.spread(0, 6 * kUnit), 4);
}

TEST(StripeLayout, ZeroLengthMapsToNothing) {
  StripeLayout l(kUnit, 16);
  EXPECT_TRUE(l.map(1234, 0).empty());
  EXPECT_EQ(l.spread(1234, 0), 0);
}

// Property sweep: segments exactly tile the requested range, in order,
// each within one unit, with consistent node assignment.
struct MapCase {
  std::uint64_t unit;
  int io_nodes;
  std::uint64_t offset;
  std::uint64_t length;
};

class StripeMapProperty : public ::testing::TestWithParam<MapCase> {};

TEST_P(StripeMapProperty, SegmentsTileTheRange) {
  const auto& p = GetParam();
  StripeLayout l(p.unit, p.io_nodes);
  const auto segs = l.map(p.offset, p.length);

  std::uint64_t pos = p.offset;
  std::uint64_t total = 0;
  for (const auto& s : segs) {
    EXPECT_EQ(s.file_offset, pos);
    EXPECT_GT(s.length, 0u);
    EXPECT_LE(s.offset_in_unit + s.length, p.unit);
    EXPECT_EQ(s.unit_index, l.unit_of(s.file_offset));
    EXPECT_EQ(s.io_node, l.io_node_of(s.unit_index));
    EXPECT_EQ(s.offset_in_unit, s.file_offset - s.unit_index * p.unit);
    pos += s.length;
    total += s.length;
  }
  EXPECT_EQ(total, p.length);
  EXPECT_EQ(pos, p.offset + p.length);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StripeMapProperty,
    ::testing::Values(MapCase{65536, 16, 0, 1}, MapCase{65536, 16, 65535, 2},
                      MapCase{65536, 16, 0, 128 * 1024}, MapCase{65536, 16, 131071, 300000},
                      MapCase{65536, 16, 7, 16 * 65536}, MapCase{4096, 3, 4095, 12289},
                      MapCase{1024, 1, 100, 10000}, MapCase{65536, 16, 155584, 155584},
                      MapCase{65536, 2, 1 << 20, 1 << 20}));

}  // namespace
}  // namespace sio::pfs
