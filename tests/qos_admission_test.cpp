// Unit tests for the bounded/fair/shedding admission queue (`qos::ServerQos`):
// slot bounds, per-(class, node) rejection with monotone credits,
// deadline-aware shedding, DRR two-class fairness, release-driven pumping,
// the max_pending invariant, and the learned service-time ratio.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "qos/qos.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace sio::qos {
namespace {

using sim::Engine;
using sim::Task;
using sim::Tick;

QosConfig small_cfg() {
  QosConfig cfg;
  cfg.enabled = true;
  cfg.service_slots = 2;
  cfg.queue_limit = 2;
  cfg.drr_quantum = sim::milliseconds(1);
  return cfg;
}

/// Admits one op, appends its admission order on grant, holds the slot for
/// `hold` ticks, then releases.
Task<void> one_op(Engine& e, ServerQos& q, int node, OpClass cls, Tick cost, Tick deadline_left,
                  Tick hold, std::vector<int>* order, int tag, std::vector<Admission>* verdicts) {
  const Admission adm = co_await q.admit(node, cls, cost, deadline_left);
  if (verdicts != nullptr) verdicts->push_back(adm);
  if (adm.verdict != Verdict::kAdmitted) co_return;
  if (order != nullptr) order->push_back(tag);
  co_await e.delay(hold);
  q.release(cost, adm.granted_at);
}

TEST(QosAdmission, FastPathAdmitsUpToServiceSlots) {
  Engine e;
  ServerQos q(e, 0, small_cfg(), nullptr);
  std::vector<int> order;
  std::vector<Admission> verdicts;
  for (int i = 0; i < 2; ++i) {
    e.spawn(one_op(e, q, /*node=*/i, OpClass::kData, sim::microseconds(10), 0,
                   sim::milliseconds(1), &order, i, &verdicts));
  }
  e.run();
  ASSERT_EQ(verdicts.size(), 2u);
  EXPECT_EQ(verdicts[0].verdict, Verdict::kAdmitted);
  EXPECT_EQ(verdicts[1].verdict, Verdict::kAdmitted);
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_EQ(q.occupancy(), 0u);
  EXPECT_EQ(q.admitted(), 2u);
  EXPECT_EQ(q.rejected(), 0u);
}

TEST(QosAdmission, OccupancyNeverExceedsServiceSlots) {
  Engine e;
  auto cfg = small_cfg();
  cfg.queue_limit = 8;
  ServerQos q(e, 0, cfg, nullptr);
  std::size_t peak = 0;
  for (int i = 0; i < 6; ++i) {
    e.spawn([](Engine& eng, ServerQos& qq, int node, std::size_t* pk) -> Task<void> {
      const Admission adm =
          co_await qq.admit(node, OpClass::kData, sim::microseconds(10), /*deadline_left=*/0);
      EXPECT_EQ(adm.verdict, Verdict::kAdmitted);
      *pk = std::max(*pk, qq.occupancy());
      co_await eng.delay(sim::milliseconds(1));
      qq.release(sim::microseconds(10), adm.granted_at);
    }(e, q, i, &peak));
  }
  e.run();
  EXPECT_EQ(peak, 2u);
  EXPECT_EQ(q.admitted(), 6u);
  EXPECT_EQ(q.waiting(), 0u);
}

TEST(QosAdmission, RejectsBeyondPerKeyQueueLimitWithMonotoneCredits) {
  Engine e;
  ServerQos q(e, 0, small_cfg(), nullptr);  // 2 slots, 2 waiters per key
  std::vector<Admission> verdicts;
  // Seven ops from the SAME (class, node): 2 admitted, 2 parked, 3 rejected.
  for (int i = 0; i < 7; ++i) {
    e.spawn(one_op(e, q, /*node=*/5, OpClass::kData, sim::microseconds(100), 0,
                   sim::milliseconds(2), nullptr, i, &verdicts));
  }
  e.run();
  ASSERT_EQ(verdicts.size(), 7u);
  int admitted = 0;
  int rejected = 0;
  std::vector<Tick> credits;
  for (const auto& v : verdicts) {
    if (v.verdict == Verdict::kAdmitted) ++admitted;
    if (v.verdict == Verdict::kRejected) {
      ++rejected;
      credits.push_back(v.retry_after);
    }
  }
  EXPECT_EQ(admitted, 4);  // 2 slots + 2 parked eventually served
  EXPECT_EQ(rejected, 3);
  EXPECT_EQ(q.rejected(), 3u);
  EXPECT_EQ(q.credits_issued(), 3u);
  // Credits are staggered by the virtual slot clock: strictly increasing, so
  // the storm's re-arrivals come back paced rather than on one tick.
  ASSERT_EQ(credits.size(), 3u);
  EXPECT_GT(credits[0], 0);
  EXPECT_LT(credits[0], credits[1]);
  EXPECT_LT(credits[1], credits[2]);
}

TEST(QosAdmission, QueueLimitIsPerClassNodeKey) {
  Engine e;
  ServerQos q(e, 0, small_cfg(), nullptr);  // 2 slots, 2 waiters per key
  std::vector<Admission> verdicts;
  // Node 1 fills the slots and its own waiter quota...
  for (int i = 0; i < 4; ++i) {
    e.spawn(one_op(e, q, /*node=*/1, OpClass::kData, sim::microseconds(100), 0,
                   sim::milliseconds(2), nullptr, i, &verdicts));
  }
  // ...but node 2's arrivals have their own queue and still park.
  for (int i = 0; i < 2; ++i) {
    e.spawn(one_op(e, q, /*node=*/2, OpClass::kData, sim::microseconds(100), 0,
                   sim::milliseconds(2), nullptr, 10 + i, &verdicts));
  }
  e.run();
  ASSERT_EQ(verdicts.size(), 6u);
  for (const auto& v : verdicts) EXPECT_EQ(v.verdict, Verdict::kAdmitted);
  EXPECT_EQ(q.rejected(), 0u);
}

TEST(QosAdmission, ShedsWhenDeadlineCannotCoverEstimatedWait) {
  Engine e;
  ServerQos q(e, 0, small_cfg(), nullptr);
  std::vector<Admission> verdicts;
  // Two long ops occupy the slots; a third with a tiny remaining deadline is
  // shed at admission (its wait estimate alone exceeds the budget), while a
  // fourth with a generous deadline parks.
  const Tick cost = sim::milliseconds(10);
  e.spawn(one_op(e, q, 1, OpClass::kData, cost, 0, sim::milliseconds(30), nullptr, 0, &verdicts));
  e.spawn(one_op(e, q, 2, OpClass::kData, cost, 0, sim::milliseconds(30), nullptr, 1, &verdicts));
  e.spawn(one_op(e, q, 3, OpClass::kData, cost, /*deadline_left=*/sim::milliseconds(1),
                 sim::milliseconds(1), nullptr, 2, &verdicts));
  e.spawn(one_op(e, q, 4, OpClass::kData, cost, /*deadline_left=*/sim::seconds(10),
                 sim::milliseconds(1), nullptr, 3, &verdicts));
  e.run();
  ASSERT_EQ(verdicts.size(), 4u);
  EXPECT_EQ(verdicts[0].verdict, Verdict::kAdmitted);
  EXPECT_EQ(verdicts[1].verdict, Verdict::kAdmitted);
  EXPECT_EQ(verdicts[2].verdict, Verdict::kShed);
  EXPECT_GT(verdicts[2].retry_after, 0);
  EXPECT_EQ(verdicts[3].verdict, Verdict::kAdmitted);
  EXPECT_EQ(q.shed(), 1u);
}

TEST(QosAdmission, NoDeadlineMeansNoShedding) {
  Engine e;
  ServerQos q(e, 0, small_cfg(), nullptr);
  std::vector<Admission> verdicts;
  const Tick cost = sim::milliseconds(10);
  for (int i = 0; i < 4; ++i) {
    e.spawn(one_op(e, q, i, OpClass::kData, cost, /*deadline_left=*/0, sim::milliseconds(30),
                   nullptr, i, &verdicts));
  }
  e.run();
  for (const auto& v : verdicts) EXPECT_EQ(v.verdict, Verdict::kAdmitted);
  EXPECT_EQ(q.shed(), 0u);
}

TEST(QosAdmission, DrrAlternatesAcrossKeysInsteadOfDrainingOne) {
  Engine e;
  QosConfig cfg = small_cfg();
  cfg.service_slots = 1;
  cfg.queue_limit = 4;
  // Quantum covers exactly one op per visit, so grants must rotate.
  cfg.drr_quantum = sim::microseconds(100);
  ServerQos q(e, 0, cfg, nullptr);
  std::vector<int> order;
  // Tag = node * 10 + index.  Node 1 parks three ops before node 2's three
  // arrive; strict FIFO would serve 11,12,13,21,22,23 — DRR must interleave.
  e.spawn(one_op(e, q, 9, OpClass::kData, sim::microseconds(100), 0, sim::milliseconds(1), &order,
                 90, nullptr));
  for (int i = 1; i <= 3; ++i) {
    e.spawn(one_op(e, q, 1, OpClass::kData, sim::microseconds(100), 0, sim::milliseconds(1),
                   &order, 10 + i, nullptr));
  }
  for (int i = 1; i <= 3; ++i) {
    e.spawn(one_op(e, q, 2, OpClass::kData, sim::microseconds(100), 0, sim::milliseconds(1),
                   &order, 20 + i, nullptr));
  }
  e.run();
  ASSERT_EQ(order.size(), 7u);
  EXPECT_EQ(order[0], 90);  // fast path
  // Each (class, node) queue gets one grant per rotation: 11,21,12,22,13,23.
  EXPECT_EQ((std::vector<int>{order.begin() + 1, order.end()}),
            (std::vector<int>{11, 21, 12, 22, 13, 23}));
}

TEST(QosAdmission, MetaAndDataClassesQueueSeparately) {
  Engine e;
  QosConfig cfg = small_cfg();
  cfg.service_slots = 1;
  cfg.queue_limit = 2;  // per (class, node): 2 meta AND 2 data may park
  cfg.drr_quantum = sim::microseconds(100);
  ServerQos q(e, 0, cfg, nullptr);
  std::vector<int> order;
  std::vector<Admission> verdicts;
  e.spawn(one_op(e, q, 7, OpClass::kData, sim::microseconds(100), 0, sim::milliseconds(1), &order,
                 0, &verdicts));
  for (int i = 1; i <= 2; ++i) {
    e.spawn(one_op(e, q, 7, OpClass::kData, sim::microseconds(100), 0, sim::milliseconds(1),
                   &order, 10 + i, &verdicts));
    e.spawn(one_op(e, q, 7, OpClass::kMeta, sim::microseconds(100), 0, sim::milliseconds(1),
                   &order, 20 + i, &verdicts));
  }
  e.run();
  for (const auto& v : verdicts) EXPECT_EQ(v.verdict, Verdict::kAdmitted);
  EXPECT_EQ(q.rejected(), 0u);
  ASSERT_EQ(order.size(), 5u);
  // The two classes rotate even though every op names the same node.
  EXPECT_EQ((std::vector<int>{order.begin() + 1, order.end()}),
            (std::vector<int>{11, 21, 12, 22}));
}

TEST(QosAdmission, MaxPendingStaysWithinConfiguredBound) {
  Engine e;
  QosConfig cfg = small_cfg();  // 2 slots, 2 waiters per key
  ServerQos q(e, 0, cfg, nullptr);
  // A storm from 3 distinct nodes: the pending population can never exceed
  // service_slots + queue_limit * keys, no matter how many ops are offered.
  for (int node = 0; node < 3; ++node) {
    for (int i = 0; i < 10; ++i) {
      e.spawn(one_op(e, q, node, OpClass::kData, sim::microseconds(50), 0, sim::milliseconds(1),
                     nullptr, node * 100 + i, nullptr));
    }
  }
  e.run();
  EXPECT_LE(q.max_pending(), cfg.service_slots + cfg.queue_limit * 3);
  EXPECT_GT(q.rejected(), 0u);
}

TEST(QosAdmission, LearnsServiceRatioFromGrantToReleaseSpread) {
  Engine e;
  ServerQos q(e, 0, small_cfg(), nullptr);
  // Every op's actual in-service time is 8x its estimate; the EWMA must move
  // toward the real regime (and stay clamped).
  for (int i = 0; i < 32; ++i) {
    e.spawn(one_op(e, q, i % 3, OpClass::kData, sim::microseconds(100), 0,
                   sim::microseconds(800), nullptr, i, nullptr));
  }
  e.run();
  EXPECT_GT(q.service_ratio(), 3.0);
  EXPECT_LE(q.service_ratio(), 16.0);
}

}  // namespace
}  // namespace sio::qos
