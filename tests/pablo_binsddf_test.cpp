// Tests for the compact binary-SDDF encoding: round trips across all record
// kinds, the sink/flush path, predictor edge cases, malformed-input
// rejection, the size advantage over text, and byte-identity of the
// binary -> text conversion against the direct text path.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "pablo/binsddf.hpp"
#include "pablo/collector.hpp"
#include "pablo/sddf.hpp"
#include "sim/engine.hpp"

namespace sio::pablo {
namespace {

TraceEvent ev(sim::Tick start, sim::Tick dur, int node, FileId file, IoOp op,
              std::uint64_t off, std::uint64_t bytes) {
  TraceEvent e;
  e.start = start;
  e.duration = dur;
  e.node = node;
  e.file = file;
  e.op = op;
  e.offset = off;
  e.bytes = bytes;
  return e;
}

TEST(BinSddf, SniffsMagic) {
  EXPECT_TRUE(is_binary_sddf(to_binary_sddf({}, {})));
  EXPECT_FALSE(is_binary_sddf("#SDDF-IO 1\n"));
  EXPECT_FALSE(is_binary_sddf(""));
  EXPECT_FALSE(is_binary_sddf("SDDFB"));  // truncated magic
}

TEST(BinSddf, EmptyTraceRoundTrips) {
  const auto tf = from_binary_sddf(to_binary_sddf({}, {}));
  EXPECT_TRUE(tf.file_names.empty());
  EXPECT_TRUE(tf.events.empty());
  EXPECT_TRUE(tf.faults.empty());
  EXPECT_TRUE(tf.qos.empty());
  EXPECT_TRUE(tf.losses.empty());
}

TEST(BinSddf, RoundTripsEventsInStoredOrder) {
  const std::vector<std::string> names = {"escat/input0", "escat/quad1"};
  // Deliberately unsorted: the decoder must preserve stored order.
  const std::vector<TraceEvent> events = {
      ev(sim::seconds(2), sim::microseconds(40), 0, 1, IoOp::kWrite, 0, 155584),
      ev(sim::seconds(1), sim::milliseconds(3), 5, 0, IoOp::kRead, 1234, 2048),
      ev(0, 1, 7, 1, IoOp::kGopen, 0, 0),
      ev(5, 1, 2, kNoFile, IoOp::kSeek, 0, 0),
  };
  const auto tf = from_binary_sddf(to_binary_sddf(names, events));
  EXPECT_EQ(tf.file_names, names);
  EXPECT_EQ(tf.events, events);
}

TEST(BinSddf, RoundTripsAllRecordKindsInterleaved) {
  BinarySddfWriter w;
  w.add_file("ckpt/frame0");
  w.add_event(ev(10, 2, 0, 0, IoOp::kWrite, 0, 4096));
  FaultEvent f;
  f.at = sim::milliseconds(5);
  f.kind = FaultKind::kServerCrash;
  f.node = -1;
  f.target = 3;
  f.info = 2;
  w.add_fault(f);
  QosEvent q;
  q.at = sim::milliseconds(6);
  q.kind = QosKind::kReject;
  q.node = 4;
  q.target = 1;
  q.info = 777;
  w.add_qos(q);
  LossEvent l;
  l.at = sim::milliseconds(7);
  l.target = 3;
  l.file = 0;
  l.offset = 128 * 1024;
  l.bytes = 65536;
  l.torn = 1;
  w.add_loss(l);
  w.add_event(ev(20, 2, 1, 0, IoOp::kRead, 4096, 4096));
  LossEvent l2 = l;
  l2.file = kNoFile;  // losses without a file attribution survive too
  l2.torn = 0;
  w.add_loss(l2);

  const auto tf = from_binary_sddf(w.finish());
  ASSERT_EQ(tf.events.size(), 2u);
  ASSERT_EQ(tf.faults.size(), 1u);
  ASSERT_EQ(tf.qos.size(), 1u);
  ASSERT_EQ(tf.losses.size(), 2u);
  EXPECT_EQ(tf.faults[0], f);
  EXPECT_EQ(tf.qos[0], q);
  EXPECT_EQ(tf.losses[0], l);
  EXPECT_EQ(tf.losses[1], l2);
}

TEST(BinSddf, PredictorHandlesRegressionsAndExtremes) {
  // Starts go backwards, offsets jump to the top of the u64 range, nodes
  // move in both directions: every delta path must take the signed route.
  const std::uint64_t big = std::numeric_limits<std::uint64_t>::max() - 7;
  const std::vector<TraceEvent> events = {
      ev(1'000'000, 5, 63, 0, IoOp::kRead, big, 17),
      ev(999'000, 4, 0, 0, IoOp::kRead, 0, big),
      ev(999'500, 4, 31, kNoFile, IoOp::kSeek, big, 0),
      ev(999'500, 4, 31, 0, IoOp::kWrite, 3, 3),
  };
  const auto tf = from_binary_sddf(to_binary_sddf({"a"}, events));
  EXPECT_EQ(tf.events, events);
}

TEST(BinSddf, SequentialTraceBeatsTextByFivefold) {
  // A PRISM-like sequential mix across nodes: the per-(node, op) offset
  // predictor and the frame compressor must hold the acceptance floor.
  std::vector<TraceEvent> events;
  std::vector<std::uint64_t> off(8, 0);
  sim::Tick now = 0;
  for (int i = 0; i < 4096; ++i) {
    const int node = i % 8;
    events.push_back(ev(now, 40'000, node, 0, IoOp::kRead, off[node], 4096));
    off[node] += 4096;
    now += 1'000;
  }
  std::ostringstream text;
  write_sddf(text, {"prism/grid"}, events);
  const std::string bin = to_binary_sddf({"prism/grid"}, events);
  EXPECT_GE(static_cast<double>(text.str().size()) / static_cast<double>(bin.size()), 5.0);
  EXPECT_EQ(from_binary_sddf(bin).events, events);
}

TEST(BinSddf, IdenticalInputsEncodeIdenticalBytes) {
  const std::vector<TraceEvent> events = {
      ev(1, 2, 3, 0, IoOp::kRead, 0, 512),
      ev(2, 2, 4, 0, IoOp::kWrite, 512, 512),
  };
  EXPECT_EQ(to_binary_sddf({"f"}, events), to_binary_sddf({"f"}, events));
}

TEST(BinSddf, SinkDrainsAtThresholdAndMatchesBufferedEncode) {
  std::string sunk;
  int chunks = 0;
  constexpr std::size_t kThreshold = 512;
  BinarySddfWriter w(
      [&](std::string_view chunk) {
        sunk.append(chunk);
        ++chunks;
      },
      kThreshold);
  w.add_file("f");
  std::vector<TraceEvent> events;
  for (int i = 0; i < 2000; ++i) {
    // Uncompressible-ish varying fields so frames actually fill.
    events.push_back(ev(i * 977, 13 + (i % 7) * 131, i % 5, 0, IoOp::kRead,
                        static_cast<std::uint64_t>(i) * 40961, 1 + (i * 2654435761u) % 65536));
  }
  std::size_t max_buffered = 0;
  for (const auto& e : events) {
    w.add_event(e);
    max_buffered = std::max(max_buffered, w.buffered_bytes());
  }
  EXPECT_EQ(w.finish(), "");  // sinked writers return nothing from finish()
  EXPECT_GT(chunks, 1);
  // Live capture never holds more than about one open frame + one closed
  // frame before the drain kicks in.
  EXPECT_LE(max_buffered, 2 * kThreshold + 256);
  EXPECT_EQ(from_binary_sddf(sunk).events, events);
}

TEST(BinSddf, ConverterTextIsByteIdenticalToDirectText) {
  sim::Engine engine;
  Collector col(engine);
  const FileId fa = col.register_file("escat/input0");
  const FileId fb = col.register_file("escat/quad1");
  // Recorded out of order: both paths sort with the same canonical comparator.
  col.record(ev(sim::seconds(2), 7, 1, fb, IoOp::kWrite, 64, 1024));
  col.record(ev(sim::seconds(1), 3, 5, fa, IoOp::kRead, 0, 2048));
  col.record(ev(sim::seconds(1), 3, 5, fa, IoOp::kSeek, 2048, 0));
  col.record(ev(0, 1, 7, fb, IoOp::kGopen, 0, 0));

  TraceFile tf = from_binary_sddf(to_binary_sddf(col));
  sort_trace_events(tf.events);
  std::ostringstream out;
  write_sddf(out, tf.file_names, tf.events, tf.faults, tf.qos, tf.losses);
  EXPECT_EQ(out.str(), col.sddf_text());
}

TEST(BinSddf, RoundTripsIntegrityRecords) {
  sim::Engine engine;
  Collector col(engine);
  const FileId f = col.register_file("ckpt/frame0");
  col.record(ev(1, 1, 0, f, IoOp::kWrite, 0, 4096));
  std::vector<IntegrityEvent> recorded;
  for (int i = 0; i < 6; ++i) {
    IntegrityEvent g;
    g.at = sim::milliseconds(100 * (i + 1));
    g.kind = static_cast<IntegrityKind>(i % kIntegrityKindCount);
    g.target = i % 3;
    g.file = (i % 2 == 0) ? f : kNoFile;  // exercises the file delta across "-"
    g.unit = static_cast<std::uint64_t>(i) * 37;
    g.bytes = static_cast<std::uint64_t>(i) * 1000 + 1;
    col.record_integrity(g);
    recorded.push_back(g);
  }

  const auto tf = from_binary_sddf(to_binary_sddf(col));
  ASSERT_EQ(tf.integrity.size(), recorded.size());
  for (std::size_t i = 0; i < recorded.size(); ++i) {
    EXPECT_EQ(tf.integrity[i].at, recorded[i].at) << i;
    EXPECT_EQ(tf.integrity[i].kind, recorded[i].kind) << i;
    EXPECT_EQ(tf.integrity[i].target, recorded[i].target) << i;
    EXPECT_EQ(tf.integrity[i].file, recorded[i].file) << i;
    EXPECT_EQ(tf.integrity[i].unit, recorded[i].unit) << i;
    EXPECT_EQ(tf.integrity[i].bytes, recorded[i].bytes) << i;
  }
  // The binary and text dialects agree on the integrity stream.
  const auto text = from_sddf_string(to_sddf_string(col));
  ASSERT_EQ(text.integrity.size(), recorded.size());
}

TEST(BinSddf, RejectsBadMagic) {
  std::string bad = to_binary_sddf({"f"}, {ev(1, 1, 0, 0, IoOp::kRead, 0, 1)});
  bad[0] = 'X';
  EXPECT_THROW(from_binary_sddf(bad), std::runtime_error);
  EXPECT_THROW(from_binary_sddf(""), std::runtime_error);
}

TEST(BinSddf, RejectsTruncation) {
  const std::string good = to_binary_sddf({"f"}, {ev(1, 1, 0, 0, IoOp::kRead, 0, 1),
                                                  ev(2, 1, 1, 0, IoOp::kWrite, 0, 9)});
  for (const std::size_t cut : {std::size_t{1}, std::size_t{4}, good.size() - 6}) {
    EXPECT_THROW(from_binary_sddf(good.substr(0, good.size() - cut)), std::runtime_error)
        << "cut " << cut;
  }
  // Magic alone is a truncated trace: the end marker is mandatory.
  EXPECT_THROW(from_binary_sddf(std::string(kBinarySddfMagic)), std::runtime_error);
}

TEST(BinSddf, RejectsUnknownTag) {
  // Hand-built container: magic + one stored frame (raw_len=1, enc_len=0)
  // holding the reserved tag 0x07 (0x00-0x06 are all assigned).
  std::string data(kBinarySddfMagic);
  data += '\x01';
  data += '\x00';
  data += '\x07';
  EXPECT_THROW(from_binary_sddf(data), std::runtime_error);
}

TEST(BinSddf, RejectsEventReferencingUnknownFile) {
  // File id 0 is referenced but no file-table entry precedes it.
  const std::string bin = to_binary_sddf({}, {ev(1, 1, 0, 0, IoOp::kRead, 0, 1)});
  EXPECT_THROW(from_binary_sddf(bin), std::runtime_error);
}

TEST(BinSddf, WriterAccountsBytesAndCounts) {
  BinarySddfWriter w;
  w.add_file("f");
  for (int i = 0; i < 100; ++i) w.add_event(ev(i, 1, 0, 0, IoOp::kRead, i * 512, 512));
  EXPECT_EQ(w.files_written(), 1u);
  EXPECT_EQ(w.events_written(), 100u);
  EXPECT_GT(w.bytes_encoded(), 0u);
  EXPECT_FALSE(w.finished());
  const std::string out = w.finish();
  EXPECT_TRUE(w.finished());
  EXPECT_EQ(out.size(), w.container_bytes());
}

}  // namespace
}  // namespace sio::pablo
