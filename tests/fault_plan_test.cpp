// Tests for FaultPlan: scenario constructors, validation, and the
// determinism of seeded random plans.

#include <gtest/gtest.h>

#include <stdexcept>

#include "fault/plan.hpp"

namespace sio::fault {
namespace {

TEST(FaultPlan, FaultFreeIsEmptyAndValid) {
  const auto p = FaultPlan::fault_free();
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.injection_count(), 0u);
  EXPECT_FALSE(p.retry.enabled);
  EXPECT_NO_THROW(p.validate(16));
}

TEST(FaultPlan, ScenariosValidateOnTheCaltechMachine) {
  for (const auto& p : {FaultPlan::disk_degraded(1), FaultPlan::io_node_crash(2),
                        FaultPlan::slow_link(3), FaultPlan::io_node_crash_torn(4)}) {
    EXPECT_FALSE(p.empty()) << p.name;
    EXPECT_TRUE(p.retry.enabled) << p.name;
    EXPECT_NO_THROW(p.validate(16)) << p.name;
  }
}

TEST(FaultPlan, ValidateRejectsOutOfRangeIoNode) {
  auto p = FaultPlan::disk_degraded(1);
  EXPECT_THROW(p.validate(1), std::invalid_argument);  // plan targets io 0..2
}

TEST(FaultPlan, ValidateRejectsCrashWithoutRestart) {
  FaultPlan p;
  p.retry.enabled = true;
  p.server_crashes.push_back({0, sim::seconds(1), sim::seconds(1)});  // restart !> at
  EXPECT_THROW(p.validate(16), std::invalid_argument);
}

TEST(FaultPlan, ValidateRejectsCrashWithRetryDisabled) {
  FaultPlan p;
  p.server_crashes.push_back({0, sim::seconds(1), sim::seconds(2)});
  EXPECT_THROW(p.validate(16), std::invalid_argument);
}

TEST(FaultPlan, ValidateRejectsOverlappingCrashWindowsOnOneServer) {
  FaultPlan p;
  p.retry.enabled = true;
  // Second crash fires while the first outage is still open: rejected.
  p.server_crashes.push_back({0, sim::seconds(1), sim::seconds(4)});
  p.server_crashes.push_back({0, sim::seconds(2), sim::seconds(6)});
  EXPECT_THROW(p.validate(16), std::invalid_argument);

  // Even touching is ambiguous: a crash exactly at the earlier restart tick.
  p.server_crashes.back() = {0, sim::seconds(4), sim::seconds(6)};
  EXPECT_THROW(p.validate(16), std::invalid_argument);

  // Strictly after the restart is fine (that is the crash-during-recovery
  // shape io_node_crash_torn uses), and so is the same window on another
  // server.
  p.server_crashes.back() = {0, sim::seconds(4) + 1, sim::seconds(6)};
  EXPECT_NO_THROW(p.validate(16));
  p.server_crashes.push_back({1, sim::seconds(2), sim::seconds(6)});
  EXPECT_NO_THROW(p.validate(16));
}

TEST(FaultPlan, ValidateRejectsInvertedWindowsAndBadDropP) {
  FaultPlan p;
  p.retry.enabled = true;
  p.disk_slow.push_back({0, sim::seconds(5), sim::seconds(2), 2.0});
  EXPECT_THROW(p.validate(16), std::invalid_argument);
  p.disk_slow.clear();
  p.link_faults.push_back({0, 0, sim::seconds(1), false, 0, 1.5});
  EXPECT_THROW(p.validate(16), std::invalid_argument);
}

std::string describe(const FaultPlan& p) {
  std::string s = p.name + ";";
  for (const auto& f : p.disk_failures) {
    s += "df " + std::to_string(f.io_node) + " " + std::to_string(f.at) + " " +
         std::to_string(f.rebuild_bytes) + ";";
  }
  for (const auto& f : p.disk_slow) {
    s += "ds " + std::to_string(f.io_node) + " " + std::to_string(f.t0) + ".." +
         std::to_string(f.t1) + " " + std::to_string(f.multiplier) + ";";
  }
  for (const auto& f : p.disk_stuck) {
    s += "dk " + std::to_string(f.io_node) + " " + std::to_string(f.at) + " " +
         std::to_string(f.extra) + ";";
  }
  for (const auto& f : p.server_crashes) {
    s += "sc " + std::to_string(f.io_node) + " " + std::to_string(f.at) + ".." +
         std::to_string(f.restart_at) + ";";
  }
  for (const auto& f : p.server_degraded) {
    s += "sd " + std::to_string(f.io_node) + " " + std::to_string(f.t0) + ".." +
         std::to_string(f.t1) + ";";
  }
  for (const auto& f : p.link_faults) {
    s += "lf " + std::to_string(f.io_node) + " " + std::to_string(f.t0) + ".." +
         std::to_string(f.t1) + " " + (f.down ? "down" : "slow") + " " +
         std::to_string(f.extra_delay) + " " + std::to_string(f.drop_p) + ";";
  }
  return s;
}

TEST(FaultPlan, RandomPlanIsDeterministicPerSeed) {
  const auto a = FaultPlan::random_plan(42, sim::seconds(60), 16);
  const auto b = FaultPlan::random_plan(42, sim::seconds(60), 16);
  EXPECT_EQ(describe(a), describe(b));
  EXPECT_NO_THROW(a.validate(16));
}

TEST(FaultPlan, RandomPlansDifferAcrossSeeds) {
  // At least one of a handful of seeds must differ from seed 42's draw (all
  // identical would mean the seed is ignored).
  const auto base = describe(FaultPlan::random_plan(42, sim::seconds(60), 16));
  bool any_differs = false;
  for (std::uint64_t s = 43; s < 48; ++s) {
    if (describe(FaultPlan::random_plan(s, sim::seconds(60), 16)) != base) any_differs = true;
  }
  EXPECT_TRUE(any_differs);
}

// ---------------------------------------------------------------------------
// Contradictory-window rejection for the corruption fault types.
// ---------------------------------------------------------------------------

TEST(FaultPlan, IntegrityScenariosValidateOnTheCaltechMachine) {
  for (const auto mode :
       {pfs::IntegrityMode::kOff, pfs::IntegrityMode::kVerify, pfs::IntegrityMode::kRepair}) {
    for (const auto& p :
         {FaultPlan::bit_rot_plan(42, mode), FaultPlan::write_back_corrupt_plan(42, mode),
          FaultPlan::link_corrupt_plan(42, mode)}) {
      EXPECT_FALSE(p.empty()) << p.name;
      EXPECT_GT(p.injection_count(), 0u) << p.name;
      EXPECT_TRUE(p.retry.enabled) << p.name;
      EXPECT_NO_THROW(p.validate(16)) << p.name;
    }
  }
}

TEST(FaultPlan, ValidateRejectsTwoSpindleFailuresOnOneNode) {
  // RAID-3 survives exactly one spindle: a second failure on the same node is
  // a contradictory plan, not a scenario.
  FaultPlan p;
  p.retry.enabled = true;
  p.disk_failures.push_back({0, sim::seconds(1), 1 << 20});
  p.disk_failures.push_back({0, sim::seconds(5), 1 << 20});
  EXPECT_THROW(p.validate(16), std::invalid_argument);
  p.disk_failures.back().io_node = 1;  // different node is fine
  EXPECT_NO_THROW(p.validate(16));
}

TEST(FaultPlan, ValidateRejectsStuckRequestAtSpindleFailureTick) {
  FaultPlan p;
  p.retry.enabled = true;
  p.disk_failures.push_back({2, sim::seconds(3), 1 << 20});
  p.disk_stuck.push_back({2, sim::seconds(3), sim::seconds(1)});
  EXPECT_THROW(p.validate(16), std::invalid_argument);
  p.disk_stuck.back().at = sim::seconds(3) + 1;
  EXPECT_NO_THROW(p.validate(16));
}

TEST(FaultPlan, ValidateRejectsBitRotDuringCrashOutage) {
  FaultPlan p;
  p.retry.enabled = true;
  p.server_crashes.push_back({0, sim::seconds(2), sim::seconds(4)});
  p.bit_rot.push_back({0, sim::seconds(3), 2, 99, false});  // inside the outage
  EXPECT_THROW(p.validate(16), std::invalid_argument);
  p.bit_rot.back().at = sim::seconds(4);  // at restart is fine
  EXPECT_NO_THROW(p.validate(16));
  p.bit_rot.back() = {1, sim::seconds(3), 2, 99, false};  // other node is fine
  EXPECT_NO_THROW(p.validate(16));
}

TEST(FaultPlan, ValidateRejectsWriteBackCorruptOverlappingCrash) {
  FaultPlan p;
  p.retry.enabled = true;
  p.server_crashes.push_back({1, sim::seconds(2), sim::seconds(4)});
  p.write_back_corrupt.push_back({1, sim::seconds(3), sim::seconds(6), false});
  EXPECT_THROW(p.validate(16), std::invalid_argument);
  p.write_back_corrupt.back() = {1, sim::seconds(4), sim::seconds(6), false};
  EXPECT_NO_THROW(p.validate(16));
}

TEST(FaultPlan, ValidateRejectsOverlappingWriteBackCorruptWindows) {
  FaultPlan p;
  p.retry.enabled = true;
  p.write_back_corrupt.push_back({0, sim::seconds(1), sim::seconds(4), false});
  p.write_back_corrupt.push_back({0, sim::seconds(3), sim::seconds(6), true});
  EXPECT_THROW(p.validate(16), std::invalid_argument);
  p.write_back_corrupt.back().t0 = sim::seconds(4);  // abutting is fine
  EXPECT_NO_THROW(p.validate(16));
  p.write_back_corrupt.back() = {1, sim::seconds(3), sim::seconds(6), true};
  EXPECT_NO_THROW(p.validate(16));
}

TEST(FaultPlan, ValidateRejectsBadLinkCorruptWindows) {
  FaultPlan p;
  p.retry.enabled = true;
  p.link_corrupt.push_back({0, sim::seconds(2), sim::seconds(1), 3});  // inverted
  EXPECT_THROW(p.validate(16), std::invalid_argument);
  p.link_corrupt.back() = {0, sim::seconds(1), sim::seconds(2), 0};  // every_n < 1
  EXPECT_THROW(p.validate(16), std::invalid_argument);
  p.link_corrupt.back() = {17, sim::seconds(1), sim::seconds(2), 3};  // bad node
  EXPECT_THROW(p.validate(16), std::invalid_argument);
  p.link_corrupt.back() = {0, sim::seconds(1), sim::seconds(2), 3};
  EXPECT_NO_THROW(p.validate(16));
  p.retry.enabled = false;  // corruption retries require the retry policy
  EXPECT_THROW(p.validate(16), std::invalid_argument);
}

TEST(FaultPlan, ValidateRejectsNegativeScrubConfig) {
  FaultPlan p;
  p.retry.enabled = true;
  p.integrity.mode = pfs::IntegrityMode::kRepair;
  p.integrity.scrub_interval = -1;
  EXPECT_THROW(p.validate(16), std::invalid_argument);
  p.integrity.scrub_interval = sim::milliseconds(50);
  p.integrity.scrub_sweeps = -2;
  EXPECT_THROW(p.validate(16), std::invalid_argument);
  p.integrity.scrub_sweeps = 10;
  EXPECT_NO_THROW(p.validate(16));
}

TEST(FaultPlan, RandomPlanStaysValidOnShortHorizons) {
  // Short horizons must suppress the fault types that need room (crashes,
  // link windows) instead of drawing inverted ranges.
  for (std::uint64_t s = 0; s < 10; ++s) {
    const auto p = FaultPlan::random_plan(s, sim::seconds(2), 4);
    EXPECT_NO_THROW(p.validate(4)) << "seed " << s;
    EXPECT_TRUE(p.server_crashes.empty());
  }
}

}  // namespace
}  // namespace sio::fault
