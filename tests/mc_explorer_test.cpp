// Unit tests for the schedule-exploration core (src/mc): controller branch
// recording, exhaustive DFS, replay determinism, divergence handling,
// convergence pruning, random sampling, and ddmin minimization.  The tests
// use tiny synthetic scenarios with exactly known choice trees, plus one
// registry scenario as an integration cross-check; the full acceptance
// sweep over every bundled configuration lives in tools/simmc (`simmc
// ctest`).

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mc/explorer.hpp"
#include "mc/scenarios.hpp"
#include "sim/task.hpp"

namespace sio::mc {
namespace {

// Two tasks appending their id; the only branch point is which start-resume
// dispatches first (one same-tick ready pair -> choice tree of exactly two
// schedules: "-" and "1").  The "bug" flavor declares B-before-A illegal.
class OrderScenario : public Scenario {
 public:
  explicit OrderScenario(bool b_first_is_bug) : bug_(b_first_is_bug) {}

  void start(sim::Engine& engine, Controller&) override {
    engine.spawn(runner(0));
    engine.spawn(runner(1));
  }

  void check() override {
    if (bug_ && !log_.empty() && log_.front() == 1) {
      throw InvariantViolation("task 1 overtook task 0");
    }
  }

  void finish() override {
    if (log_.size() != 2) throw InvariantViolation("a task never ran");
  }

 private:
  sim::Task<void> runner(int id) {
    log_.push_back(id);
    co_return;
  }

  bool bug_;
  std::vector<int> log_;
};

// One task, one explicit choose(3) decision; choice 2 trips the invariant.
// Exercises scenario-surfaced decision points without any scheduler branch.
class ChooseScenario : public Scenario {
 public:
  void start(sim::Engine& engine, Controller& ctl) override {
    engine.spawn(runner(engine, ctl));
  }

  void check() override {
    if (bad_) throw InvariantViolation("forbidden choice reached");
  }

 private:
  sim::Task<void> runner(sim::Engine& engine, Controller& ctl) {
    co_await engine.delay(1);
    if (ctl.choose(3) == 2) bad_ = true;
    co_await engine.delay(1);
  }

  bool bad_ = false;
};

ScenarioFactory order_factory(bool bug) {
  return [bug] { return std::make_unique<OrderScenario>(bug); };
}

ScenarioFactory choose_factory() {
  return [] { return std::make_unique<ChooseScenario>(); };
}

TEST(Schedule, ToStringParseRoundTrip) {
  Schedule s;
  s.choices = {0, 2, 1};
  EXPECT_EQ(s.to_string(), "0.2.1");
  EXPECT_EQ(Schedule::parse("0.2.1"), s);
  EXPECT_EQ(Schedule{}.to_string(), "-");
  EXPECT_EQ(Schedule::parse("-"), Schedule{});
  EXPECT_FALSE(Schedule::parse("0..1").has_value());
  EXPECT_FALSE(Schedule::parse("x").has_value());
}

TEST(Explorer, ExhaustsTheTwoScheduleOrderTree) {
  Explorer ex(order_factory(/*b_first_is_bug=*/false));
  const ExploreResult res = ex.explore();
  EXPECT_TRUE(res.exhausted);
  EXPECT_EQ(res.runs, 2u);
  EXPECT_EQ(res.distinct, 2u);
  EXPECT_EQ(res.violations, 0u);
  EXPECT_EQ(res.max_branch_depth, 1u);
}

TEST(Explorer, FindsTheOrderBugOnTheSiblingSchedule) {
  Explorer ex(order_factory(/*b_first_is_bug=*/true));
  const ExploreResult res = ex.explore();
  EXPECT_TRUE(res.exhausted);
  EXPECT_EQ(res.violations, 1u);
  ASSERT_EQ(res.failures.size(), 1u);
  EXPECT_EQ(res.failures.front().schedule.to_string(), "1");
  EXPECT_NE(res.failures.front().message.find("overtook"), std::string::npos);
}

TEST(Explorer, ChooseBranchesEnumerateEveryAlternative) {
  Explorer ex(choose_factory());
  const ExploreResult res = ex.explore();
  EXPECT_TRUE(res.exhausted);
  EXPECT_EQ(res.runs, 3u);  // choose(3): tails "-", "1", "2"
  EXPECT_EQ(res.violations, 1u);
  ASSERT_EQ(res.failures.size(), 1u);
  EXPECT_EQ(res.failures.front().schedule.to_string(), "2");
}

TEST(Explorer, ReplayIsByteIdentical) {
  Explorer ex(choose_factory());
  Schedule bad;
  bad.choices = {2};
  RunRecord rec;
  ASSERT_TRUE(ex.replays_identically(bad, &rec));
  EXPECT_TRUE(rec.violation);
  EXPECT_EQ(rec.schedule, bad);
  const RunRecord again = ex.replay(bad);
  EXPECT_EQ(again.trace_hash, rec.trace_hash);
}

TEST(Explorer, OutOfRangeForcedChoiceDiverges) {
  Explorer ex(choose_factory());
  Schedule wild;
  wild.choices = {7};  // arity is 3
  const RunRecord rec = ex.replay(wild);
  EXPECT_TRUE(rec.diverged);
  EXPECT_FALSE(rec.violation);
  EXPECT_FALSE(rec.message.empty());
}

TEST(Explorer, MinimizeDropsIrrelevantChoicesAndReproduces) {
  // In the choose scenario only the value 2 matters; a padded schedule with
  // trailing defaults must shrink to exactly "2".
  Explorer ex(choose_factory());
  Schedule padded;
  padded.choices = {2, 0, 0};
  const Schedule min = ex.minimize(padded);
  EXPECT_EQ(min.to_string(), "2");
  RunRecord rec;
  EXPECT_TRUE(ex.replays_identically(min, &rec));
  EXPECT_TRUE(rec.violation);
}

TEST(Explorer, MinimizeReturnsInputWhenNothingReproduces) {
  Explorer ex(choose_factory());
  Schedule clean;
  clean.choices = {1};
  EXPECT_EQ(ex.minimize(clean), clean);
}

TEST(Explorer, SamplingIsSeedDeterministic) {
  ExploreOptions opt;
  Explorer a(order_factory(true), opt);
  Explorer b(order_factory(true), opt);
  const ExploreResult ra = a.sample(32, /*seed=*/7);
  const ExploreResult rb = b.sample(32, /*seed=*/7);
  EXPECT_EQ(ra.runs, 32u);
  EXPECT_EQ(ra.distinct, rb.distinct);
  EXPECT_EQ(ra.violations, rb.violations);
  EXPECT_LE(ra.distinct, 2u);  // the whole tree has two schedules
  EXPECT_GE(ra.violations, 1u);  // 32 coin flips: both orders show up
}

TEST(Explorer, PruningPreservesExhaustionAndVerdictOnTokenScenario) {
  // Registry cross-check: the token proof config must exhaust cleanly with
  // pruning both off and on, and pruning must never *add* runs.
  ExploreOptions full;
  full.prune = false;
  Explorer unpruned(make_token_scenario(2, 1), full);
  const ExploreResult r_full = unpruned.explore();
  EXPECT_TRUE(r_full.exhausted);
  EXPECT_EQ(r_full.violations, 0u);

  ExploreOptions pruned_opt;
  pruned_opt.prune = true;
  Explorer pruned(make_token_scenario(2, 1), pruned_opt);
  const ExploreResult r_pruned = pruned.explore();
  EXPECT_TRUE(r_pruned.exhausted);
  EXPECT_EQ(r_pruned.violations, 0u);
  EXPECT_LE(r_pruned.runs, r_full.runs);
  EXPECT_GT(r_pruned.runs, 1u);
}

TEST(Explorer, StopAtFirstViolationHaltsEarly) {
  ExploreOptions opt;
  opt.stop_at_first_violation = true;
  Explorer ex(choose_factory(), opt);
  const ExploreResult res = ex.explore();
  EXPECT_EQ(res.violations, 1u);
  EXPECT_FALSE(res.exhausted);
  EXPECT_EQ(res.runs, 3u);  // "-", "1", then the violating "2"
}

TEST(Registry, BundledScenariosResolveByName) {
  EXPECT_GE(scenario_registry().size(), 8u);
  const NamedScenario* token = find_scenario("token");
  ASSERT_NE(token, nullptr);
  EXPECT_TRUE(token->expect_clean);
  const NamedScenario* unsafe = find_scenario("retry.unsafe");
  ASSERT_NE(unsafe, nullptr);
  EXPECT_FALSE(unsafe->expect_clean);
  const NamedScenario* wal_full = find_scenario("wal.full");
  ASSERT_NE(wal_full, nullptr);
  EXPECT_TRUE(wal_full->expect_clean);
  const NamedScenario* wal_off = find_scenario("wal.off");
  ASSERT_NE(wal_off, nullptr);
  EXPECT_FALSE(wal_off->expect_clean);
  EXPECT_EQ(find_scenario("no-such-config"), nullptr);
}

TEST(Registry, WalJournalProofExhaustsAndUnjournaledLoses) {
  // The journaling contract as a bounded proof: with the write-ahead journal
  // every interleaving — including crash placement mid write-back and a
  // second fault mid recovery — keeps acknowledged writes recoverable and
  // redoes each record at most once.  The same protocol without the journal
  // must yield a write-behind loss counterexample that minimizes and
  // replays byte-identically.
  Explorer full(make_wal_scenario(2, /*journal=*/true));
  const ExploreResult r_full = full.explore();
  EXPECT_TRUE(r_full.exhausted);
  EXPECT_EQ(r_full.violations, 0u);

  Explorer off(make_wal_scenario(2, /*journal=*/false));
  const ExploreResult r_off = off.explore();
  EXPECT_TRUE(r_off.exhausted);
  ASSERT_GT(r_off.violations, 0u);
  const Schedule min = off.minimize(r_off.failures.front().schedule);
  RunRecord rec;
  EXPECT_TRUE(off.replays_identically(min, &rec));
  EXPECT_TRUE(rec.violation);
  EXPECT_NE(rec.message.find("unrecoverable"), std::string::npos);
}

TEST(Registry, IntegrityProofExhaustsAndUnverifiedAcksCorrupt) {
  // The end-to-end integrity contract as a bounded proof: with verify-on-read
  // and the scrubber, every interleaving of rot placement, read timing, the
  // detection-to-claim gap, and the rebuild window ends with no corrupt byte
  // acknowledged, each unit regenerated at most once, and no latent error
  // surviving.  The same schedule with verification off must yield a silent
  // corrupt-acknowledge counterexample that minimizes and replays
  // byte-identically.
  Explorer proof(make_integrity_scenario(2, /*verify=*/true));
  const ExploreResult r_proof = proof.explore();
  EXPECT_TRUE(r_proof.exhausted);
  EXPECT_EQ(r_proof.violations, 0u);

  Explorer off(make_integrity_scenario(2, /*verify=*/false));
  const ExploreResult r_off = off.explore();
  EXPECT_TRUE(r_off.exhausted);
  ASSERT_GT(r_off.violations, 0u);
  const Schedule min = off.minimize(r_off.failures.front().schedule);
  RunRecord rec;
  EXPECT_TRUE(off.replays_identically(min, &rec));
  EXPECT_TRUE(rec.violation);
  EXPECT_NE(rec.message.find("acknowledged"), std::string::npos);
}

}  // namespace
}  // namespace sio::mc
