// Semantics tests for the six PFS access modes, with byte-accurate content
// verification (ContentPolicy::kStoreBytes):
//   M_UNIX    private pointers, shared-file serialization
//   M_RECORD  node-order record mapping, disjoint coverage
//   M_ASYNC   private pointers, fully parallel
//   M_GLOBAL  identical synchronized requests, single transfer + broadcast
//   M_SYNC    node-ordered offsets from exchanged sizes
//   M_LOG     FCFS shared pointer

#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <vector>

#include "apps/common.hpp"
#include "machine/machine.hpp"
#include "pablo/collector.hpp"
#include "pfs/group.hpp"
#include "pfs/pfs.hpp"

namespace sio::pfs {
namespace {

std::vector<std::byte> pattern(std::size_t n, unsigned seed) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::byte>((i * 37 + seed) & 0xff);
  return v;
}

struct Fixture {
  hw::Machine machine;
  pablo::Collector collector;
  Pfs fs;
  std::unique_ptr<Group> group;

  explicit Fixture(int nodes = 8, hw::OsProfile os = hw::osf_r13())
      : machine(hw::Machine::caltech_paragon(nodes, std::move(os))),
        collector(machine.engine()),
        fs(machine, collector, PfsConfig{{}, ContentPolicy::kStoreBytes}),
        group(Group::contiguous(machine.engine(), nodes)) {}

  sim::Engine& engine() { return machine.engine(); }

  void run_nodes(int n, std::function<sim::Task<void>(int)> body) {
    engine().spawn(apps::parallel_section(engine(), n, std::move(body)));
    engine().run();
  }
};

// ------------------------------------------------------------- M_RECORD --

TEST(ModeRecord, MapsAccessesToNodeOrderedRecords) {
  Fixture f(4);
  constexpr std::uint64_t kRec = 1024;
  f.run_nodes(4, [&](int node) -> sim::Task<void> {
    auto fh = co_await f.fs.gopen(node, "t/rec", *f.group,
                                  {.mode = IoMode::kRecord, .record_size = kRec, .truncate = true});
    // wave w, rank r -> record w*4 + r
    for (int w = 0; w < 3; ++w) {
      auto data = pattern(kRec, static_cast<unsigned>(node * 16 + w));
      co_await fh.write(kRec, data);
    }
    co_await fh.close();
  });

  // Every record must hold the pattern of its (wave, rank).
  auto& file = f.fs.lookup("t/rec");
  EXPECT_EQ(file.size, 12u * kRec);
  for (int w = 0; w < 3; ++w) {
    for (int r = 0; r < 4; ++r) {
      std::vector<std::byte> out(kRec);
      file.content->read(static_cast<std::uint64_t>(w * 4 + r) * kRec, out);
      EXPECT_EQ(out, pattern(kRec, static_cast<unsigned>(r * 16 + w))) << "w=" << w << " r=" << r;
    }
  }
}

TEST(ModeRecord, ReadBackRoundTrips) {
  Fixture f(4);
  constexpr std::uint64_t kRec = 2048;
  f.run_nodes(4, [&](int node) -> sim::Task<void> {
    auto fh = co_await f.fs.gopen(node, "t/rec2", *f.group,
                                  {.mode = IoMode::kRecord, .record_size = kRec, .truncate = true});
    auto data = pattern(kRec, static_cast<unsigned>(node));
    co_await fh.write(kRec, data);
    co_await fh.close();

    auto rd = co_await f.fs.gopen(node, "t/rec2", *f.group,
                                  {.mode = IoMode::kRecord, .record_size = kRec});
    std::vector<std::byte> out(kRec);
    const auto n = co_await rd.read(kRec, out);
    EXPECT_EQ(n, kRec);
    EXPECT_EQ(out, pattern(kRec, static_cast<unsigned>(node)));
    co_await rd.close();
  });
}

TEST(ModeRecord, WrongSizeRequestThrows) {
  Fixture f(2);
  f.run_nodes(2, [&](int node) -> sim::Task<void> {
    auto fh = co_await f.fs.gopen(node, "t/rec3", *f.group,
                                  {.mode = IoMode::kRecord, .record_size = 1024, .truncate = true});
    bool threw = false;
    try {
      co_await fh.write(512);
    } catch (const PfsError&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
    co_await fh.write(1024);  // handle still usable
    co_await fh.close();
  });
}

// ------------------------------------------------------------- M_GLOBAL --

TEST(ModeGlobal, ReadIsSingleTransferSharedByAll) {
  Fixture f(8);
  f.fs.stage_file("t/glob", 64 * 1024);
  const auto staged = pattern(4096, 9);
  f.fs.stage_contents("t/glob", 0, staged);

  const auto reads_before = f.fs.bytes_read();
  f.run_nodes(8, [&](int node) -> sim::Task<void> {
    auto fh = co_await f.fs.gopen(node, "t/glob", *f.group, {.mode = IoMode::kGlobal});
    std::vector<std::byte> out(4096);
    const auto n = co_await fh.read(4096, out);
    EXPECT_EQ(n, 4096u);
    EXPECT_EQ(out, staged);  // everyone sees the same data
    co_await fh.close();
  });
  // One logical transfer, not eight.
  EXPECT_EQ(f.fs.bytes_read() - reads_before, 4096u);
}

TEST(ModeGlobal, SharedPointerAdvancesOncePerWave) {
  Fixture f(4);
  f.fs.stage_file("t/glob2", 64 * 1024);
  f.run_nodes(4, [&](int node) -> sim::Task<void> {
    auto fh = co_await f.fs.gopen(node, "t/glob2", *f.group, {.mode = IoMode::kGlobal});
    co_await fh.read(1000);
    co_await fh.read(1000);
    co_await fh.close();
  });
  EXPECT_EQ(f.fs.lookup("t/glob2").shared_offset, 2000u);
}

TEST(ModeGlobal, MismatchedRequestsThrow) {
  Fixture f(2);
  f.fs.stage_file("t/glob3", 64 * 1024);
  f.engine().spawn(apps::parallel_section(f.engine(), 2, [&](int node) -> sim::Task<void> {
    auto fh = co_await f.fs.gopen(node, "t/glob3", *f.group, {.mode = IoMode::kGlobal});
    co_await fh.read(node == 0 ? 100 : 200);  // not identical
    co_await fh.close();
  }));
  EXPECT_THROW(f.engine().run(), PfsError);
}

// --------------------------------------------------------------- M_SYNC --

TEST(ModeSync, AssignsNodeOrderedOffsetsFromSizes) {
  Fixture f(4);
  f.run_nodes(4, [&](int node) -> sim::Task<void> {
    auto fh = co_await f.fs.gopen(node, "t/sync", *f.group,
                                  {.mode = IoMode::kSync, .truncate = true});
    // Node r writes (r+1)*100 bytes; offsets must be the prefix sums.
    const auto bytes = static_cast<std::uint64_t>((node + 1) * 100);
    auto data = pattern(bytes, static_cast<unsigned>(node));
    co_await fh.write(bytes, data);
    co_await fh.close();
  });
  auto& file = f.fs.lookup("t/sync");
  EXPECT_EQ(file.size, 100u + 200 + 300 + 400);
  std::uint64_t off = 0;
  for (int r = 0; r < 4; ++r) {
    const auto bytes = static_cast<std::uint64_t>((r + 1) * 100);
    std::vector<std::byte> out(bytes);
    file.content->read(off, out);
    EXPECT_EQ(out, pattern(bytes, static_cast<unsigned>(r))) << "rank " << r;
    off += bytes;
  }
}

TEST(ModeSync, RepeatedWavesAppend) {
  Fixture f(3);
  f.run_nodes(3, [&](int node) -> sim::Task<void> {
    auto fh = co_await f.fs.gopen(node, "t/sync2", *f.group,
                                  {.mode = IoMode::kSync, .truncate = true});
    co_await fh.write(100);
    co_await fh.write(100);
    co_await fh.close();
  });
  EXPECT_EQ(f.fs.lookup("t/sync2").size, 600u);
  EXPECT_EQ(f.fs.lookup("t/sync2").shared_offset, 600u);
}

// ---------------------------------------------------------------- M_LOG --

TEST(ModeLog, AppendsFcfsWithoutOverlap) {
  Fixture f(6);
  f.run_nodes(6, [&](int node) -> sim::Task<void> {
    auto fh = co_await f.fs.gopen(node, "t/log", *f.group,
                                  {.mode = IoMode::kLog, .truncate = true});
    for (int i = 0; i < 5; ++i) {
      co_await fh.write(64);
    }
    co_await fh.close();
  });
  // 30 appends of 64 bytes: contiguous, no gaps or overlap.
  EXPECT_EQ(f.fs.lookup("t/log").size, 30u * 64);
  EXPECT_EQ(f.fs.lookup("t/log").shared_offset, 30u * 64);

  // Trace offsets must be distinct multiples of 64 covering the file.
  std::set<std::uint64_t> offsets;
  for (const auto& ev : f.collector.events()) {
    if (ev.op == pablo::IoOp::kWrite) offsets.insert(ev.offset);
  }
  EXPECT_EQ(offsets.size(), 30u);
  EXPECT_EQ(*offsets.rbegin(), 29u * 64);
}

// --------------------------------------------------------------- M_UNIX --

TEST(ModeUnix, PrivatePointersAdvanceIndependently) {
  Fixture f(2);
  f.fs.stage_file("t/unix", 64 * 1024);
  f.run_nodes(2, [&](int node) -> sim::Task<void> {
    auto fh = co_await f.fs.open(node, "t/unix");
    co_await fh.read(node == 0 ? 100 : 200);
    EXPECT_EQ(fh.tell(), node == 0 ? 100u : 200u);
    co_await fh.close();
  });
}

TEST(ModeUnix, SharedWritesAtSeekedOffsetsLandCorrectly) {
  Fixture f(4, hw::osf_r12());
  f.run_nodes(4, [&](int node) -> sim::Task<void> {
    auto fh = co_await f.fs.gopen(node, "t/unixw", *f.group, {.truncate = true});
    const std::uint64_t off = static_cast<std::uint64_t>(node) * 1000;
    co_await fh.seek(off);
    auto data = pattern(500, static_cast<unsigned>(node + 40));
    co_await fh.write(500, data);
    co_await fh.close();
  });
  auto& file = f.fs.lookup("t/unixw");
  for (int r = 0; r < 4; ++r) {
    std::vector<std::byte> out(500);
    file.content->read(static_cast<std::uint64_t>(r) * 1000, out);
    EXPECT_EQ(out, pattern(500, static_cast<unsigned>(r + 40)));
  }
}

TEST(ModeUnix, SharedAccessCostsMoreThanSolo) {
  // The same warmed-up read stream is cheaper when the file has a single
  // opener (client caching + no token) than when shared (serialized).
  // Compare steady-state per-read costs: the tail of each node's stream,
  // past the one-time cache-fill misses.
  auto run_case = [](int nodes) {
    Fixture f(16, hw::osf_r12());
    f.fs.stage_file("t/contend", 1 << 20);
    f.run_nodes(nodes, [&](int node) -> sim::Task<void> {
      auto fh = co_await f.fs.open(node, "t/contend");
      for (int i = 0; i < 50; ++i) co_await fh.read(512);
      co_await fh.close();
    });
    // Average duration of each node's last 25 reads.
    std::vector<std::vector<sim::Tick>> per_node(static_cast<std::size_t>(nodes));
    for (const auto& ev : f.collector.events()) {
      if (ev.op == pablo::IoOp::kRead) {
        per_node[static_cast<std::size_t>(ev.node)].push_back(ev.duration);
      }
    }
    sim::Tick tail = 0;
    for (const auto& durs : per_node) {
      for (std::size_t i = 25; i < durs.size(); ++i) tail += durs[i];
    }
    return tail / nodes;
  };
  const sim::Tick solo_tail = run_case(1);
  const sim::Tick shared_tail = run_case(16);
  EXPECT_GT(shared_tail, solo_tail * 2);
}

// -------------------------------------------------------------- M_ASYNC --

TEST(ModeAsync, ParallelDisjointWritesRoundTrip) {
  Fixture f(8);
  f.run_nodes(8, [&](int node) -> sim::Task<void> {
    auto fh = co_await f.fs.gopen(node, "t/async", *f.group,
                                  {.mode = IoMode::kAsync, .truncate = true});
    const std::uint64_t off = static_cast<std::uint64_t>(node) * 4096;
    co_await fh.seek(off);
    auto data = pattern(4096, static_cast<unsigned>(node + 7));
    co_await fh.write(4096, data);
    co_await fh.close();
  });
  auto& file = f.fs.lookup("t/async");
  EXPECT_EQ(file.size, 8u * 4096);
  for (int r = 0; r < 8; ++r) {
    std::vector<std::byte> out(4096);
    file.content->read(static_cast<std::uint64_t>(r) * 4096, out);
    EXPECT_EQ(out, pattern(4096, static_cast<unsigned>(r + 7)));
  }
}

TEST(ModeAsync, UnavailableOnR12) {
  Fixture f(2, hw::osf_r12());
  f.engine().spawn(apps::parallel_section(f.engine(), 2, [&](int node) -> sim::Task<void> {
    auto fh = co_await f.fs.gopen(node, "t/async12", *f.group, {.mode = IoMode::kAsync});
    co_await fh.close();
  }));
  EXPECT_THROW(f.engine().run(), PfsError);
}

TEST(ModeAsync, SeeksAreLocalAndCheap) {
  Fixture f(4);
  f.run_nodes(4, [&](int node) -> sim::Task<void> {
    auto fh = co_await f.fs.gopen(node, "t/asyncseek", *f.group,
                                  {.mode = IoMode::kAsync, .truncate = true});
    co_await fh.seek(static_cast<std::uint64_t>(node) * 100000);
    co_await fh.close();
  });
  for (const auto& ev : f.collector.events()) {
    if (ev.op == pablo::IoOp::kSeek) {
      EXPECT_LT(ev.duration, sim::milliseconds(1));
    }
  }
}

// Shared-pointer modes reject seek.
TEST(ModeSemantics, SeekOnSharedPointerModeThrows) {
  Fixture f(2);
  f.fs.stage_file("t/noseek", 4096);
  f.engine().spawn(apps::parallel_section(f.engine(), 2, [&](int node) -> sim::Task<void> {
    auto fh = co_await f.fs.gopen(node, "t/noseek", *f.group, {.mode = IoMode::kGlobal});
    co_await fh.seek(100);
    co_await fh.close();
  }));
  EXPECT_THROW(f.engine().run(), PfsError);
}

}  // namespace
}  // namespace sio::pfs
