// Tests for core::ParallelRunner and the guarantee the whole experiment layer
// rests on: fanning seeded runs across a thread pool changes wall-clock time
// only — every result, and every byte of the SDDF trace serialized from it,
// is identical to the serial run.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "apps/escat.hpp"
#include "core/experiment.hpp"
#include "core/parallel.hpp"

namespace {

using sio::core::ParallelRunner;

std::vector<std::function<int()>> counting_jobs(int n) {
  std::vector<std::function<int()>> jobs;
  for (int i = 0; i < n; ++i) jobs.push_back([i] { return i * i; });
  return jobs;
}

TEST(ParallelRunner, ResultsComeBackInInputOrder) {
  for (unsigned threads : {0u, 1u, 2u, 8u, 64u}) {
    const auto out = ParallelRunner(threads).run<int>(counting_jobs(37));
    ASSERT_EQ(out.size(), 37u);
    for (int i = 0; i < 37; ++i) EXPECT_EQ(out[i], i * i) << "threads=" << threads;
  }
}

TEST(ParallelRunner, HandlesEmptyAndSingleJobLists) {
  ParallelRunner pool(4);
  EXPECT_TRUE(pool.run<int>({}).empty());
  const auto one = pool.run<int>({[] { return 7; }});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 7);
}

TEST(ParallelRunner, MoreJobsThanThreadsAndViceVersa) {
  EXPECT_EQ(ParallelRunner(2).run<int>(counting_jobs(100)).size(), 100u);
  EXPECT_EQ(ParallelRunner(100).run<int>(counting_jobs(2)).size(), 2u);
}

TEST(ParallelRunner, FirstExceptionByInputOrderPropagates) {
  std::vector<std::function<int()>> jobs;
  for (int i = 0; i < 16; ++i) {
    jobs.push_back([i]() -> int {
      if (i == 3) throw std::runtime_error("job three");
      if (i == 11) throw std::runtime_error("job eleven");
      return i;
    });
  }
  for (unsigned threads : {1u, 4u}) {
    try {
      ParallelRunner(threads).run<int>(jobs);
      FAIL() << "expected a rethrow";
    } catch (const std::runtime_error& e) {
      // Deterministic choice regardless of which worker hit its error first:
      // the lowest-index failure wins.
      EXPECT_STREQ(e.what(), "job three");
    }
  }
}

TEST(ParallelRunner, MoveOnlyResultTypesWork) {
  std::vector<std::function<std::unique_ptr<int>()>> jobs;
  for (int i = 0; i < 8; ++i) {
    jobs.push_back([i] { return std::make_unique<int>(i); });
  }
  const auto out = ParallelRunner(3).run<std::unique_ptr<int>>(jobs);
  ASSERT_EQ(out.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(*out[i], i);
}

// ---- determinism across the pool ------------------------------------------

TEST(ParallelRunner, SddfFingerprintsMatchSerialRunsByteForByte) {
  using sio::apps::escat::Version;
  constexpr std::uint64_t kSeed = 510;

  // Serial reference: three ESCAT versions, one after another.
  std::vector<std::string> serial;
  for (Version v : {Version::A, Version::B, Version::C}) {
    serial.push_back(sio::core::run_escat(sio::apps::escat::make_config(v), kSeed).to_sddf());
  }

  // The same three runs through the pool (forced parallel even on 1-core CI).
  std::vector<std::function<sio::core::RunResult()>> jobs;
  for (Version v : {Version::A, Version::B, Version::C}) {
    jobs.push_back(
        [v] { return sio::core::run_escat(sio::apps::escat::make_config(v), kSeed); });
  }
  const auto runs = ParallelRunner(3).run<sio::core::RunResult>(jobs);

  ASSERT_EQ(runs.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const std::string par = runs[i].to_sddf();
    ASSERT_FALSE(par.empty());
    EXPECT_TRUE(par == serial[i]) << "SDDF trace " << i << " diverged ("
                                  << par.size() << " vs " << serial[i].size() << " bytes)";
  }
}

TEST(ParallelRunner, RepeatedPoolRunsAreBitStable) {
  // Two pool invocations of the same seeded job list must agree exactly —
  // no shared mutable state leaks between workers.
  auto job = [] {
    return sio::core::run_escat(
        sio::apps::escat::make_config(sio::apps::escat::Version::B), 99);
  };
  std::vector<std::function<sio::core::RunResult()>> jobs = {job, job};
  const auto first = ParallelRunner(2).run<sio::core::RunResult>(jobs);
  const auto second = ParallelRunner(2).run<sio::core::RunResult>(jobs);
  EXPECT_TRUE(first[0].to_sddf() == second[1].to_sddf());
  EXPECT_TRUE(first[1].to_sddf() == second[0].to_sddf());
  EXPECT_EQ(first[0].events_processed, second[0].events_processed);
}

}  // namespace
