// Tests for the functional I/O classification (compulsory / checkpoint /
// data staging) and the §6 per-phase profiles.

#include <gtest/gtest.h>

#include "pablo/classify.hpp"

namespace sio::pablo {
namespace {

TraceEvent data(sim::Tick start, IoOp op, std::uint64_t bytes, int node = 0) {
  TraceEvent e;
  e.start = start;
  e.duration = 1;
  e.node = node;
  e.file = 0;
  e.op = op;
  e.bytes = bytes;
  return e;
}

std::vector<apps::PhaseSpan> three_phases() {
  return {{"init", 0, sim::seconds(10)},
          {"compute", sim::seconds(10), sim::seconds(90)},
          {"final", sim::seconds(90), sim::seconds(100)}};
}

TEST(Classify, FirstAndLastPhasesAreCompulsory) {
  std::vector<TraceEvent> events{data(sim::seconds(1), IoOp::kRead, 1000),
                                 data(sim::seconds(95), IoOp::kWrite, 2000)};
  const auto b = classify_phases(events, three_phases());
  EXPECT_EQ(b.of(IoClass::kCompulsory).ops, 2u);
  EXPECT_EQ(b.of(IoClass::kCompulsory).bytes, 3000u);
  EXPECT_EQ(b.of(IoClass::kCheckpoint).ops, 0u);
  EXPECT_EQ(b.of(IoClass::kStaging).ops, 0u);
}

TEST(Classify, BurstyMiddlePhaseIsCheckpoint) {
  std::vector<TraceEvent> events;
  // Three separated bursts of 1 KB writes inside the middle phase.
  for (sim::Tick t : {sim::seconds(20), sim::seconds(50), sim::seconds(80)}) {
    for (int i = 0; i < 5; ++i) events.push_back(data(t + i, IoOp::kWrite, 1024));
  }
  const auto b = classify_phases(events, three_phases());
  EXPECT_EQ(b.of(IoClass::kCheckpoint).ops, 15u);
  EXPECT_EQ(b.of(IoClass::kStaging).ops, 0u);
}

TEST(Classify, ContinuousMiddlePhaseIsStaging) {
  std::vector<TraceEvent> events;
  for (int i = 0; i < 70; ++i) {
    events.push_back(data(sim::seconds(11 + i), IoOp::kWrite, 2048));
  }
  const auto b = classify_phases(events, three_phases());
  EXPECT_EQ(b.of(IoClass::kStaging).ops, 70u);
  EXPECT_EQ(b.of(IoClass::kCheckpoint).ops, 0u);
  EXPECT_EQ(b.dominant_by_bytes(), IoClass::kStaging);
}

TEST(Classify, NonDataOpsAreIgnored) {
  std::vector<TraceEvent> events{data(sim::seconds(1), IoOp::kOpen, 0),
                                 data(sim::seconds(1), IoOp::kSeek, 0)};
  const auto b = classify_phases(events, three_phases());
  for (int i = 0; i < kIoClassCount; ++i) {
    EXPECT_EQ(b.per_class[static_cast<std::size_t>(i)].ops, 0u);
  }
}

TEST(Classify, ClassNamesAreStable) {
  EXPECT_EQ(io_class_name(IoClass::kCompulsory), "compulsory");
  EXPECT_EQ(io_class_name(IoClass::kCheckpoint), "checkpoint");
  EXPECT_EQ(io_class_name(IoClass::kStaging), "data-staging");
}

TEST(PhaseProfiles, ComputesTheThreeDimensions) {
  std::vector<TraceEvent> events;
  events.push_back(data(sim::seconds(1), IoOp::kRead, 100, /*node=*/0));
  events.push_back(data(sim::seconds(2), IoOp::kRead, 256 * 1024, /*node=*/1));
  events.push_back(data(sim::seconds(3), IoOp::kGopen, 0, /*node=*/0));
  events.push_back(data(sim::seconds(50), IoOp::kWrite, 4096, /*node=*/2));

  const auto profiles = phase_profiles(events, three_phases());
  ASSERT_EQ(profiles.size(), 3u);
  const auto& init = profiles[0];
  EXPECT_EQ(init.reads, 2u);
  EXPECT_EQ(init.small_ops, 1u);
  EXPECT_EQ(init.large_ops, 1u);
  EXPECT_EQ(init.parallelism, 2);
  EXPECT_TRUE(init.op_kinds.count("gopen"));
  EXPECT_EQ(profiles[1].writes, 1u);
  EXPECT_EQ(profiles[1].parallelism, 1);
  EXPECT_EQ(profiles[2].parallelism, 0);

  const std::string table = render_phase_profiles(profiles);
  EXPECT_NE(table.find("init"), std::string::npos);
  EXPECT_NE(table.find("parallelism"), std::string::npos);
}

}  // namespace
}  // namespace sio::pablo
