// Tests for the Pablo analysis layer: collector ordering, file lifetime /
// time window / file region summaries, and aggregate breakdowns.

#include <gtest/gtest.h>

#include "pablo/aggregate.hpp"
#include "pablo/collector.hpp"
#include "pablo/summary.hpp"
#include "sim/engine.hpp"

namespace sio::pablo {
namespace {

TraceEvent ev(sim::Tick start, sim::Tick dur, int node, FileId file, IoOp op,
              std::uint64_t offset = 0, std::uint64_t bytes = 0) {
  TraceEvent e;
  e.start = start;
  e.duration = dur;
  e.node = node;
  e.file = file;
  e.op = op;
  e.offset = offset;
  e.bytes = bytes;
  return e;
}

struct Fixture {
  sim::Engine engine;
  Collector col{engine};
  FileId fa = col.register_file("a");
  FileId fb = col.register_file("b");
};

TEST(Collector, RegisterFileIsIdempotent) {
  Fixture f;
  EXPECT_EQ(f.col.register_file("a"), f.fa);
  EXPECT_EQ(f.col.file_count(), 2u);
  EXPECT_EQ(f.col.file_name(f.fb), "b");
}

TEST(Collector, EventsAreSortedByStart) {
  Fixture f;
  f.col.record(ev(sim::seconds(5), 1, 0, f.fa, IoOp::kRead));
  f.col.record(ev(sim::seconds(1), 1, 0, f.fa, IoOp::kRead));
  f.col.record(ev(sim::seconds(3), 1, 0, f.fa, IoOp::kRead));
  const auto& events = f.col.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].start, sim::seconds(1));
  EXPECT_EQ(events[2].start, sim::seconds(5));
}

TEST(Collector, DisabledCaptureDropsEvents) {
  Fixture f;
  f.col.set_enabled(false);
  f.col.record(ev(0, 1, 0, f.fa, IoOp::kRead));
  EXPECT_EQ(f.col.event_count(), 0u);
  f.col.set_enabled(true);
  f.col.record(ev(0, 1, 0, f.fa, IoOp::kRead));
  EXPECT_EQ(f.col.event_count(), 1u);
}

TEST(OpTimer, RecordsElapsedDuration) {
  Fixture f;
  f.engine.schedule_at(sim::seconds(2), [] {});
  OpTimer t(f.col, 3, f.fa, IoOp::kWrite);
  f.engine.run();  // time advances to 2s
  t.finish(100, 4096);
  const auto& e = f.col.events().front();
  EXPECT_EQ(e.duration, sim::seconds(2));
  EXPECT_EQ(e.node, 3);
  EXPECT_EQ(e.op, IoOp::kWrite);
  EXPECT_EQ(e.offset, 100u);
  EXPECT_EQ(e.bytes, 4096u);
}

TEST(LifetimeSummary, AggregatesPerFile) {
  Fixture f;
  f.col.record(ev(0, sim::seconds(1), 0, f.fa, IoOp::kOpen));
  f.col.record(ev(sim::seconds(1), sim::seconds(2), 0, f.fa, IoOp::kRead, 0, 1000));
  f.col.record(ev(sim::seconds(3), sim::seconds(1), 0, f.fa, IoOp::kWrite, 0, 500));
  f.col.record(ev(sim::seconds(9), sim::seconds(1), 0, f.fa, IoOp::kClose));
  f.col.record(ev(sim::seconds(2), sim::seconds(1), 1, f.fb, IoOp::kRead, 0, 77));

  const auto sums = file_lifetime_summaries(f.col);
  ASSERT_EQ(sums.size(), 2u);
  const auto& a = sums[f.fa];
  EXPECT_EQ(a.core.stats(IoOp::kRead).count, 1u);
  EXPECT_EQ(a.core.bytes_read(), 1000u);
  EXPECT_EQ(a.core.bytes_written(), 500u);
  EXPECT_EQ(a.core.total_io_time(), sim::seconds(5));
  EXPECT_EQ(a.core.total_ops(), 4u);
  EXPECT_EQ(a.first_open, 0);
  EXPECT_EQ(a.last_close, sim::seconds(10));
  EXPECT_EQ(a.open_span(), sim::seconds(10));

  const auto& b = sums[f.fb];
  EXPECT_EQ(b.core.bytes_read(), 77u);
  EXPECT_EQ(b.open_span(), 0);  // never opened/closed
}

TEST(TimeWindowSummary, SelectsByStartTime) {
  Fixture f;
  f.col.record(ev(sim::seconds(1), 1, 0, f.fa, IoOp::kRead, 0, 10));
  f.col.record(ev(sim::seconds(5), 1, 0, f.fa, IoOp::kRead, 0, 20));
  f.col.record(ev(sim::seconds(9), 1, 0, f.fa, IoOp::kRead, 0, 40));

  const auto w = time_window_summary(f.col, sim::seconds(2), sim::seconds(9));
  EXPECT_EQ(w.core.stats(IoOp::kRead).count, 1u);
  EXPECT_EQ(w.core.bytes_read(), 20u);
}

TEST(TimeWindowSeries, PartitionsWithoutLossOrOverlap) {
  Fixture f;
  for (int i = 0; i < 100; ++i) {
    f.col.record(ev(sim::seconds(i), 1, 0, f.fa, IoOp::kRead, 0, 1));
  }
  const auto series = time_window_series(f.col, 0, sim::seconds(100), 7);
  ASSERT_EQ(series.size(), 7u);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < series.size(); ++i) {
    total += series[i].core.stats(IoOp::kRead).count;
    if (i > 0) EXPECT_EQ(series[i].t0, series[i - 1].t1);
  }
  EXPECT_EQ(total, 100u);
}

TEST(FileRegionSummary, SelectsIntersectingDataOps) {
  Fixture f;
  f.col.record(ev(0, 1, 0, f.fa, IoOp::kRead, 0, 100));      // [0,100)
  f.col.record(ev(0, 1, 0, f.fa, IoOp::kRead, 150, 100));    // [150,250)
  f.col.record(ev(0, 1, 0, f.fa, IoOp::kWrite, 240, 100));   // [240,340)
  f.col.record(ev(0, 1, 0, f.fa, IoOp::kOpen, 0, 0));        // not a data op
  f.col.record(ev(0, 1, 0, f.fb, IoOp::kRead, 150, 100));    // other file

  const auto r = file_region_summary(f.col, f.fa, 200, 300);
  EXPECT_EQ(r.core.stats(IoOp::kRead).count, 1u);
  EXPECT_EQ(r.core.stats(IoOp::kWrite).count, 1u);
  EXPECT_EQ(r.core.stats(IoOp::kOpen).count, 0u);
}

TEST(AggregateBreakdown, PercentagesAreConsistent) {
  Fixture f;
  f.col.record(ev(0, sim::seconds(3), 0, f.fa, IoOp::kOpen));
  f.col.record(ev(0, sim::seconds(1), 0, f.fa, IoOp::kRead, 0, 10));
  const AggregateBreakdown b(f.col, sim::seconds(100));
  EXPECT_DOUBLE_EQ(b.pct_of_io_time(IoOp::kOpen), 75.0);
  EXPECT_DOUBLE_EQ(b.pct_of_io_time(IoOp::kRead), 25.0);
  EXPECT_DOUBLE_EQ(b.pct_of_exec_time(IoOp::kOpen), 3.0);
  EXPECT_DOUBLE_EQ(b.pct_io_of_exec(), 4.0);
  EXPECT_EQ(b.dominant_op(), IoOp::kOpen);

  // The Table 2 / Table 3 consistency identity the paper's tables satisfy:
  // pct_of_exec = pct_of_io * (io/exec).
  EXPECT_NEAR(b.pct_of_exec_time(IoOp::kOpen),
              b.pct_of_io_time(IoOp::kOpen) * b.pct_io_of_exec() / 100.0, 1e-9);
}

TEST(AggregateBreakdown, IoSharesSumToHundred) {
  Fixture f;
  f.col.record(ev(0, 123, 0, f.fa, IoOp::kOpen));
  f.col.record(ev(0, 456, 0, f.fa, IoOp::kSeek));
  f.col.record(ev(0, 789, 0, f.fa, IoOp::kWrite, 0, 10));
  const AggregateBreakdown b(f.col, sim::seconds(1));
  double total = 0;
  for (int i = 0; i < kIoOpCount; ++i) total += b.pct_of_io_time(static_cast<IoOp>(i));
  EXPECT_NEAR(total, 100.0, 1e-9);
}

TEST(AggregateBreakdown, EmptyTraceIsAllZero) {
  Fixture f;
  const AggregateBreakdown b(f.col, sim::seconds(1));
  EXPECT_EQ(b.total_io_time(), 0);
  EXPECT_DOUBLE_EQ(b.pct_of_io_time(IoOp::kRead), 0.0);
}

}  // namespace
}  // namespace sio::pablo
