// Tests for the client/file-system layer: open/gopen/close accounting,
// buffering behavior, EOF clamping, error contracts, staging, striped
// allocation, and trace emission.

#include <gtest/gtest.h>

#include "apps/common.hpp"
#include "machine/machine.hpp"
#include "pablo/collector.hpp"
#include "pfs/pfs.hpp"

namespace sio::pfs {
namespace {

struct Fixture {
  hw::Machine machine;
  pablo::Collector collector;
  Pfs fs;
  std::unique_ptr<Group> group;

  explicit Fixture(int nodes = 4, hw::OsProfile os = hw::osf_r13())
      : machine(hw::Machine::caltech_paragon(nodes, std::move(os))),
        collector(machine.engine()),
        fs(machine, collector, PfsConfig{{}, ContentPolicy::kStoreBytes}),
        group(Group::contiguous(machine.engine(), nodes)) {}

  sim::Engine& engine() { return machine.engine(); }

  void run(sim::Task<void> t) {
    engine().spawn(std::move(t));
    engine().run();
  }

  std::uint64_t count_ops(pablo::IoOp op) const {
    std::uint64_t n = 0;
    for (const auto& ev : collector.events()) {
      if (ev.op == op) ++n;
    }
    return n;
  }
};

sim::Task<void> open_close_body(Fixture& f) {
  auto fh = co_await f.fs.open(0, "c/a", {.truncate = true});
  EXPECT_TRUE(fh.is_open());
  EXPECT_EQ(f.fs.lookup("c/a").open_count, 1);
  co_await fh.close();
  EXPECT_FALSE(fh.is_open());
  EXPECT_EQ(f.fs.lookup("c/a").open_count, 0);
}

TEST(PfsClient, OpenCreatesAndTracksOpenCount) {
  Fixture f;
  f.run(open_close_body(f));
  EXPECT_EQ(f.count_ops(pablo::IoOp::kOpen), 1u);
  EXPECT_EQ(f.count_ops(pablo::IoOp::kClose), 1u);
}

sim::Task<void> write_extends_body(Fixture& f) {
  auto fh = co_await f.fs.open(0, "c/grow", {.truncate = true});
  co_await fh.write(1000);
  EXPECT_EQ(fh.tell(), 1000u);
  co_await fh.seek(5000);
  co_await fh.write(500);
  co_await fh.close();
  EXPECT_EQ(f.fs.file_size("c/grow"), 5500u);
}

TEST(PfsClient, WritesExtendTheFile) {
  Fixture f;
  f.run(write_extends_body(f));
}

sim::Task<void> clamp_body(Fixture& f) {
  f.fs.stage_file("c/short", 100);
  auto fh = co_await f.fs.open(0, "c/short");
  const auto n1 = co_await fh.read(60);
  EXPECT_EQ(n1, 60u);
  const auto n2 = co_await fh.read(60);  // only 40 left
  EXPECT_EQ(n2, 40u);
  const auto n3 = co_await fh.read(60);  // at EOF
  EXPECT_EQ(n3, 0u);
  co_await fh.close();
}

TEST(PfsClient, ReadsClampAtEndOfFile) {
  Fixture f;
  f.run(clamp_body(f));
}

sim::Task<void> round_trip_body(Fixture& f) {
  std::vector<std::byte> data(300);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<std::byte>(i & 0xff);
  auto fh = co_await f.fs.open(0, "c/rt", {.truncate = true});
  co_await fh.write(data.size(), data);
  co_await fh.seek(0);
  std::vector<std::byte> out(300);
  const auto n = co_await fh.read(300, out);
  EXPECT_EQ(n, 300u);
  EXPECT_EQ(out, data);
  co_await fh.close();
}

TEST(PfsClient, SoloWriteReadRoundTripsThroughClientBuffer) {
  Fixture f;
  f.run(round_trip_body(f));
}

sim::Task<void> buffering_cost_body(Fixture& f, bool buffered, sim::Tick* io_time) {
  f.fs.stage_file(buffered ? "c/buf" : "c/raw", 1 << 20);
  auto fh =
      co_await f.fs.open(0, buffered ? "c/buf" : "c/raw", {.buffering = buffered});
  for (int i = 0; i < 64; ++i) {
    co_await fh.read(64);  // tiny sequential reads
  }
  co_await fh.close();
  sim::Tick total = 0;
  for (const auto& ev : f.collector.events()) {
    if (ev.op == pablo::IoOp::kRead) total += ev.duration;
  }
  *io_time = total;
}

TEST(PfsClient, DisablingBufferingMakesTinyReadsRawArrayAccesses) {
  // The PRISM version C lesson, as a unit test.
  sim::Tick with_buf = 0, without_buf = 0;
  {
    Fixture f;
    f.run(buffering_cost_body(f, true, &with_buf));
  }
  {
    Fixture f;
    f.run(buffering_cost_body(f, false, &without_buf));
  }
  EXPECT_GT(without_buf, with_buf * 5);
}

sim::Task<void> mode_errors_body(Fixture& f) {
  auto fh = co_await f.fs.open(0, "c/err", {.truncate = true});
  bool threw = false;
  try {
    co_await fh.set_iomode(IoMode::kRecord);  // no record size
  } catch (const PfsError&) {
    threw = true;
  }
  EXPECT_TRUE(threw);
  threw = false;
  try {
    co_await fh.set_iomode(IoMode::kGlobal);  // no group
  } catch (const PfsError&) {
    threw = true;
  }
  EXPECT_TRUE(threw);
  co_await fh.close();
}

TEST(PfsClient, ModeChangeErrorContracts) {
  Fixture f;
  f.run(mode_errors_body(f));
}

TEST(PfsClient, OpenWithNonUnixModeThrows) {
  Fixture f;
  f.engine().spawn([](Fixture& fx) -> sim::Task<void> {
    auto fh = co_await fx.fs.open(0, "c/badmode", {.mode = IoMode::kRecord, .record_size = 1024});
    co_await fh.close();
  }(f));
  EXPECT_THROW(f.engine().run(), PfsError);
}

sim::Task<void> set_iomode_solo_body(Fixture& f) {
  auto fh = co_await f.fs.open(0, "c/modes", {.truncate = true});
  co_await fh.set_iomode(IoMode::kAsync);
  EXPECT_EQ(fh.mode(), IoMode::kAsync);
  co_await fh.close();
}

TEST(PfsClient, SoloSetIomodeWorks) {
  Fixture f;
  f.run(set_iomode_solo_body(f));
  EXPECT_EQ(f.count_ops(pablo::IoOp::kIomode), 1u);
}

TEST(PfsClient, LookupOfMissingFileThrows) {
  Fixture f;
  EXPECT_THROW(f.fs.lookup("does/not/exist"), PfsError);
  EXPECT_FALSE(f.fs.exists("does/not/exist"));
}

TEST(PfsClient, StageContentsRequiresByteStore) {
  hw::Machine machine(hw::Machine::caltech_paragon(2));
  pablo::Collector collector(machine.engine());
  Pfs fs(machine, collector);  // extents only
  fs.stage_file("c/x", 100);
  std::vector<std::byte> d(10);
  EXPECT_THROW(fs.stage_contents("c/x", 0, d), PfsError);
}

TEST(PfsClient, DiskOffsetsAreStable) {
  Fixture f;
  auto& file = f.fs.stage_file("c/alloc", 1 << 20);
  const auto a = f.fs.disk_offset_of(file, 0);
  const auto b = f.fs.disk_offset_of(file, 16);  // same I/O node, next local unit
  EXPECT_EQ(f.fs.disk_offset_of(file, 0), a);    // idempotent
  EXPECT_EQ(b, a + f.fs.layout().unit());        // bump-contiguous per node
}

sim::Task<void> flush_traced_body(Fixture& f) {
  auto fh = co_await f.fs.open(0, "c/flush", {.truncate = true});
  co_await fh.write(100);
  co_await fh.flush();
  co_await fh.close();
}

TEST(PfsClient, FlushIsTraced) {
  Fixture f;
  f.run(flush_traced_body(f));
  EXPECT_EQ(f.count_ops(pablo::IoOp::kFlush), 1u);
}

sim::Task<void> gopen_counts_body(Fixture& f) {
  co_await apps::parallel_section(f.engine(), 4, [&f](int node) -> sim::Task<void> {
    auto fh = co_await f.fs.gopen(node, "c/gopen", *f.group, {.truncate = true});
    co_await fh.close();
  });
}

TEST(PfsClient, GopenTracesOnePerParticipant) {
  Fixture f(4);
  f.run(gopen_counts_body(f));
  EXPECT_EQ(f.count_ops(pablo::IoOp::kGopen), 4u);
  EXPECT_EQ(f.count_ops(pablo::IoOp::kOpen), 0u);
  EXPECT_EQ(f.fs.lookup("c/gopen").open_count, 0);
}

TEST(PfsClient, GopenIsCheaperThanConcurrentOpens) {
  auto measure = [](bool collective) {
    Fixture f(32);
    sim::Tick total = 0;
    f.engine().spawn(apps::parallel_section(f.engine(), 32, [&f, collective](int node)
                                                               -> sim::Task<void> {
      if (collective) {
        auto fh = co_await f.fs.gopen(node, "c/cmp", *f.group, {});
        co_await fh.close();
      } else {
        auto fh = co_await f.fs.open(node, "c/cmp", {});
        co_await fh.close();
      }
    }));
    f.engine().run();
    for (const auto& ev : f.collector.events()) {
      if (ev.op == pablo::IoOp::kOpen || ev.op == pablo::IoOp::kGopen) total += ev.duration;
    }
    return total;
  };
  const sim::Tick open_cost = measure(false);
  const sim::Tick gopen_cost = measure(true);
  EXPECT_GT(open_cost, gopen_cost * 3);
}

sim::Task<void> determinism_body(Fixture& f) {
  co_await apps::parallel_section(f.engine(), 4, [&f](int node) -> sim::Task<void> {
    auto fh = co_await f.fs.gopen(node, "c/det", *f.group, {.truncate = true});
    co_await fh.set_iomode(IoMode::kAsync);
    co_await fh.seek(static_cast<std::uint64_t>(node) * 8192);
    for (int i = 0; i < 10; ++i) co_await fh.write(512);
    co_await fh.close();
  });
}

TEST(PfsClient, RunsAreDeterministic) {
  sim::Tick t1, t2;
  std::size_t n1, n2;
  {
    Fixture f(4);
    f.run(determinism_body(f));
    t1 = f.engine().now();
    n1 = f.collector.event_count();
  }
  {
    Fixture f(4);
    f.run(determinism_body(f));
    t2 = f.engine().now();
    n2 = f.collector.event_count();
  }
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(n1, n2);
}

}  // namespace
}  // namespace sio::pfs
