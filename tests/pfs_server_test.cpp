// Tests for the I/O-node server: stripe cache hits/misses, write-back
// behavior and dirty-limit flushing, unbuffered bypass, eviction, and the
// sequential-prefetch policy extension.

#include <gtest/gtest.h>

#include <unordered_set>
#include <vector>

#include "machine/disk.hpp"
#include "pfs/server.hpp"
#include "sim/task.hpp"

namespace sio::pfs {
namespace {

constexpr std::uint64_t kUnit = 64 * 1024;

struct Fixture {
  sim::Engine engine;
  hw::DiskConfig disk{};
  ServerConfig cfg{};

  IoServer make(int prefetch = 0, std::size_t cache_units = 8, std::size_t dirty_limit = 4) {
    cfg.prefetch_units = prefetch;
    cfg.cache_units = cache_units;
    cfg.dirty_limit = dirty_limit;
    return IoServer(engine, 0, disk, kUnit, 16, cfg);
  }

  void run(sim::Task<void> t) {
    engine.spawn(std::move(t));
    engine.run();
  }
};

sim::Task<void> read_unit(IoServer& s, std::uint32_t file, std::uint64_t unit, bool buffered) {
  co_await s.read(UnitKey{file, unit}, unit * kUnit, 0, kUnit, buffered);
}

sim::Task<void> write_unit(IoServer& s, std::uint32_t file, std::uint64_t unit, bool buffered) {
  co_await s.write(UnitKey{file, unit}, unit * kUnit, 0, 2048, buffered);
}

TEST(IoServer, FirstReadMissesSecondHits) {
  Fixture f;
  auto s = f.make();
  f.run(read_unit(s, 1, 0, true));
  EXPECT_EQ(s.cache_misses(), 1u);
  EXPECT_EQ(s.cache_hits(), 0u);
  f.run(read_unit(s, 1, 0, true));
  EXPECT_EQ(s.cache_hits(), 1u);
}

TEST(IoServer, HitIsMuchCheaperThanMiss) {
  Fixture f;
  auto s = f.make();
  f.run(read_unit(s, 1, 0, true));
  const sim::Tick miss_time = f.engine.now();
  const sim::Tick before = f.engine.now();
  f.run(read_unit(s, 1, 0, true));
  const sim::Tick hit_time = f.engine.now() - before;
  EXPECT_LT(hit_time * 10, miss_time);
}

TEST(IoServer, UnbufferedReadBypassesCache) {
  Fixture f;
  auto s = f.make();
  f.run(read_unit(s, 1, 0, false));
  f.run(read_unit(s, 1, 0, false));
  EXPECT_EQ(s.cache_misses(), 0u);
  EXPECT_EQ(s.cache_hits(), 0u);
  EXPECT_EQ(s.unbuffered_ops(), 2u);
  EXPECT_EQ(s.disk().ops(), 2u);  // every access hits the array
}

TEST(IoServer, BufferedWriteIsAbsorbedNotWrittenThrough) {
  Fixture f;
  auto s = f.make();
  f.run(write_unit(s, 1, 0, true));
  EXPECT_EQ(s.disk().ops(), 0u);
  EXPECT_EQ(s.dirty_units(), 1u);
}

TEST(IoServer, DirtyLimitTriggersInlineFlush) {
  Fixture f;
  auto s = f.make(0, 16, 2);
  auto writer = [](IoServer& srv) -> sim::Task<void> {
    for (std::uint64_t u = 0; u < 5; ++u) {
      co_await srv.write(UnitKey{1, u}, u * kUnit, 0, 2048, true);
    }
  };
  f.run(writer(s));
  EXPECT_GT(s.disk().ops(), 0u);        // some units were flushed inline
  EXPECT_LE(s.dirty_units(), 3u);       // backlog stays bounded
}

TEST(IoServer, FlushAllDrainsDirty) {
  Fixture f;
  auto s = f.make(0, 16, 16);
  auto writer = [](IoServer& srv) -> sim::Task<void> {
    for (std::uint64_t u = 0; u < 4; ++u) {
      co_await srv.write(UnitKey{1, u}, u * kUnit, 0, 2048, true);
    }
    co_await srv.flush_all();
  };
  f.run(writer(s));
  EXPECT_EQ(s.dirty_units(), 0u);
  EXPECT_EQ(s.disk().ops(), 4u);
}

TEST(IoServer, WriteThenReadHitsCache) {
  Fixture f;
  auto s = f.make();
  f.run(write_unit(s, 1, 3, true));
  f.run(read_unit(s, 1, 3, true));
  EXPECT_EQ(s.cache_hits(), 1u);
  EXPECT_EQ(s.cache_misses(), 0u);
}

TEST(IoServer, EvictionRespectsCapacityAndWritesBackDirty) {
  Fixture f;
  auto s = f.make(0, /*cache_units=*/2, /*dirty_limit=*/16);
  auto worker = [](IoServer& srv) -> sim::Task<void> {
    co_await srv.write(UnitKey{1, 0}, 0, 0, 2048, true);  // dirty
    co_await srv.read(UnitKey{1, 1}, kUnit, 0, kUnit, true);
    co_await srv.read(UnitKey{1, 2}, 2 * kUnit, 0, kUnit, true);  // evicts unit 0
  };
  f.run(worker(s));
  EXPECT_LE(s.cached_units(), 2u);
  // The dirty victim was written back: at least 3 disk ops (2 fetches + 1 WB).
  EXPECT_GE(s.disk().ops(), 3u);
}

TEST(IoServer, PrefetchFetchesAheadOnSequentialRun) {
  Fixture f;
  auto s = f.make(/*prefetch=*/2, /*cache_units=*/32);
  // Units on this server for one file differ by the stripe factor (16).
  auto reader = [](IoServer& srv) -> sim::Task<void> {
    co_await srv.read(UnitKey{1, 0}, 0, 0, kUnit, true);
    co_await srv.read(UnitKey{1, 16}, kUnit, 0, kUnit, true);  // sequential -> prefetch
    co_await srv.read(UnitKey{1, 32}, 2 * kUnit, 0, kUnit, true);  // prefetched: hit
    co_await srv.read(UnitKey{1, 48}, 3 * kUnit, 0, kUnit, true);  // prefetched: hit
  };
  f.run(reader(s));
  EXPECT_EQ(s.prefetched_units(), 2u);
  EXPECT_EQ(s.cache_hits(), 2u);
  EXPECT_EQ(s.cache_misses(), 2u);
}

TEST(IoServer, NoPrefetchOnRandomRun) {
  Fixture f;
  auto s = f.make(/*prefetch=*/2, /*cache_units=*/32);
  auto reader = [](IoServer& srv) -> sim::Task<void> {
    co_await srv.read(UnitKey{1, 0}, 0, 0, kUnit, true);
    co_await srv.read(UnitKey{1, 80}, kUnit, 0, kUnit, true);
    co_await srv.read(UnitKey{1, 32}, 2 * kUnit, 0, kUnit, true);
  };
  f.run(reader(s));
  EXPECT_EQ(s.prefetched_units(), 0u);
  EXPECT_EQ(s.cache_misses(), 3u);
}

TEST(IoServer, SeparateFilesDoNotConfusePrefetchDetector) {
  Fixture f;
  auto s = f.make(/*prefetch=*/1, /*cache_units=*/32);
  auto reader = [](IoServer& srv) -> sim::Task<void> {
    co_await srv.read(UnitKey{1, 0}, 0, 0, kUnit, true);
    co_await srv.read(UnitKey{2, 16}, kUnit, 0, kUnit, true);  // other file
  };
  f.run(reader(s));
  EXPECT_EQ(s.prefetched_units(), 0u);
}

TEST(UnitKeyHash, AdversarialKeyFamiliesDisperse) {
  // Families chosen to defeat weak mixes:
  //  * shift-overlap pairs — {file, unit} vs {file^1, unit^(1<<40)} collide
  //    under the old `(file << 40) ^ unit`;
  //  * stride-aligned units (consecutive stripe units of one file, and
  //    power-of-two strides) — low-entropy low bits feed the identity
  //    std::hash straight into the table's bucket mask;
  //  * file-id sweeps at unit 0 — all entropy in the top bits.
  UnitKeyHash h;
  std::vector<UnitKey> keys;
  for (std::uint32_t f = 0; f < 64; ++f) {
    keys.push_back({f, 0});
    keys.push_back({f ^ 1u, 1ull << 40});
  }
  for (std::uint64_t u = 0; u < 64; ++u) {
    keys.push_back({7, u});            // sequential units
    keys.push_back({7, u << 16});      // 64 KB-stride units
    keys.push_back({8, u * 1048576});  // 1 MB-stride units
  }

  std::unordered_set<std::size_t> hashes;
  std::unordered_set<std::size_t> distinct;  // families overlap at {7,0}/{8,0}
  for (const auto& k : keys) {
    hashes.insert(h(k));
    distinct.insert((static_cast<std::size_t>(k.file) << 48) ^ k.unit);
  }
  // A good mix maps distinct keys to (almost) as many distinct hashes.
  // Allow a tiny slack for honest 64-bit coincidences.
  EXPECT_GE(hashes.size(), distinct.size() - 2);

  // Bucket dispersion: project onto a small power-of-two table the way
  // libstdc++ masks hashes, and require every family to spread out instead
  // of piling onto a handful of buckets.
  std::unordered_set<std::size_t> buckets;
  for (const auto& k : keys) buckets.insert(h(k) % 128);
  EXPECT_GE(buckets.size(), 96u);
}

TEST(UnitKeyHash, ShiftOverlapPairNoLongerCollides) {
  // The specific collision family of the old hash: flipping file bit 0 and
  // unit bit 40 cancelled out.  The mixed hash must tell them apart.
  UnitKeyHash h;
  const UnitKey a{3, 5};
  const UnitKey b{3 ^ 1u, 5ull ^ (1ull << 40)};
  EXPECT_FALSE(a == b);
  EXPECT_NE(h(a), h(b));
}

}  // namespace
}  // namespace sio::pfs
