// Tests for the timing-wheel event store and the InlineCallback it dispatches.
//
// The centerpiece is a million-event stress run checked against a reference
// (time, seq) priority queue — the exact structure the old engine used — over
// a mixed workload of zero-tick, same-slot, cross-level, and far-future
// (overflow heap) delays, with a fraction of events scheduled from inside
// firing callbacks.  The wheel must reproduce the reference firing order
// id-for-id.

#include <gtest/gtest.h>

#include <coroutine>
#include <cstdint>
#include <queue>
#include <vector>

#include "sim/callback.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"
#include "sim/wheel.hpp"

namespace {

using sio::sim::InlineCallback;
using sio::sim::kMaxTick;
using sio::sim::Tick;
using sio::sim::TimingWheel;

// ---- schedulers under a common driver interface ---------------------------

/// The old engine's event store, kept as the ordering oracle: a binary heap
/// over (time, insertion-seq).
class RefHeap {
 public:
  Tick now() const { return now_; }
  std::size_t size() const { return q_.size(); }

  void schedule(Tick at, std::uint64_t id) { q_.push({at, seq_++, id}); }

  /// Pops the earliest event with at <= limit, advancing the clock to it.
  bool pop(Tick limit, std::uint64_t& id) {
    if (q_.empty() || q_.top().at > limit) return false;
    now_ = q_.top().at;
    id = q_.top().id;
    q_.pop();
    return true;
  }

 private:
  struct Ev {
    Tick at;
    std::uint64_t seq;
    std::uint64_t id;
  };
  struct Later {
    bool operator()(const Ev& a, const Ev& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  Tick now_ = 0;
  std::uint64_t seq_ = 0;
  std::priority_queue<Ev, std::vector<Ev>, Later> q_;
};

/// The timing wheel behind the same interface.  Callbacks capture
/// {this, id} — two words, so they ride the inline (no-heap) path.
class WheelSched {
 public:
  Tick now() const { return w_.now(); }
  std::size_t size() const { return w_.size(); }

  void schedule(Tick at, std::uint64_t id) {
    w_.emplace(at, [this, id] { fired_id_ = id; });
  }

  bool pop(Tick limit, std::uint64_t& id) {
    sio::sim::EventNode* n = w_.pop_next(limit);
    if (n == nullptr) return false;
    n->cb.invoke();
    id = fired_id_;
    w_.release(n);
    return true;
  }

 private:
  TimingWheel w_;
  std::uint64_t fired_id_ = 0;
};

/// Runs the stress workload against a scheduler and returns the firing order.
/// All decisions (delays, burst sizes, child scheduling) come from a seeded
/// Rng consumed in firing order, so two correct schedulers produce identical
/// draws and the returned id sequences are comparable element-for-element.
template <class Sched>
std::vector<std::uint64_t> run_stress(std::size_t total, std::uint64_t seed) {
  Sched s;
  sio::sim::Rng rng(seed);
  std::vector<std::uint64_t> fired;
  fired.reserve(total);
  std::uint64_t next_id = 0;
  std::size_t seeded = 0;

  // Delay mix: zero-tick, level-0, level-1/2, and overflow-heap territory.
  auto push_one = [&] {
    const std::int64_t r = rng.uniform_int(0, 99);
    Tick d;
    if (r < 15) {
      d = 0;
    } else if (r < 55) {
      d = rng.uniform_int(1, 2047);
    } else if (r < 80) {
      d = rng.uniform_int(2048, std::int64_t{1} << 22);
    } else if (r < 95) {
      d = rng.uniform_int((std::int64_t{1} << 22) + 1, std::int64_t{1} << 33);
    } else {
      d = (std::int64_t{1} << 33) + rng.uniform_int(0, std::int64_t{1} << 20);
    }
    s.schedule(s.now() + d, next_id++);
    ++seeded;
  };

  while (fired.size() < total) {
    while (seeded < total && s.size() < 512) push_one();
    const std::int64_t burst = rng.uniform_int(1, 64);
    for (std::int64_t i = 0; i < burst; ++i) {
      std::uint64_t id;
      if (!s.pop(kMaxTick, id)) break;
      fired.push_back(id);
      // Some events trigger follow-up scheduling at the just-advanced clock —
      // the regime the aligned-window insertion rule protects.
      if (seeded < total + total / 8 && rng.uniform_int(0, 7) == 0) push_one();
    }
  }
  return fired;
}

TEST(TimingWheelStress, MillionEventsMatchReferenceHeap) {
  constexpr std::size_t kTotal = 1'000'000;
  const auto wheel = run_stress<WheelSched>(kTotal, 0x510);
  const auto ref = run_stress<RefHeap>(kTotal, 0x510);
  ASSERT_EQ(wheel.size(), ref.size());
  // EXPECT_EQ on the vectors would print megabytes on failure; find the first
  // divergence instead.
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(wheel[i], ref[i]) << "first divergence at firing #" << i;
  }
}

// ---- targeted wheel behaviors ---------------------------------------------

TEST(TimingWheel, SameTickEventsFireInInsertionOrder) {
  WheelSched s;
  for (std::uint64_t i = 0; i < 100; ++i) s.schedule(42, i);
  std::uint64_t id;
  for (std::uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(s.pop(kMaxTick, id));
    EXPECT_EQ(id, i);
  }
  EXPECT_FALSE(s.pop(kMaxTick, id));
  EXPECT_EQ(s.now(), 42);
}

TEST(TimingWheel, FarFutureOverflowInterleavesWithNearEvents) {
  // Events beyond the wheel's 2^33-tick span live in the overflow heap and
  // must still fire in global (time, seq) order once the clock reaches them.
  WheelSched s;
  const Tick far = Tick{1} << 40;
  s.schedule(far + 5, 0);
  s.schedule(3, 1);
  s.schedule(far + 5, 2);  // same far tick: seq order with id 0
  s.schedule(far + 1, 3);
  s.schedule(7, 4);
  std::vector<std::uint64_t> fired;
  std::uint64_t id;
  while (s.pop(kMaxTick, id)) fired.push_back(id);
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{1, 4, 3, 0, 2}));
  EXPECT_EQ(s.now(), far + 5);
}

TEST(TimingWheel, PopRespectsLimitAndAdvanceClockJumps) {
  // run_until-style use: pop up to a limit, then jump the clock to the limit
  // (possibly across alignment blocks) and keep going.
  TimingWheel w;
  std::vector<int> fired;
  const Tick block = Tick{1} << 22;  // one level-2 slot span
  w.emplace(5, [&fired] { fired.push_back(5); });
  w.emplace(3 * block + 1, [&fired] { fired.push_back(1); });
  w.emplace(3 * block + 9, [&fired] { fired.push_back(9); });

  EXPECT_EQ(w.pop_next(2), nullptr);  // limit before first event
  w.advance_clock(2);
  sio::sim::EventNode* n = w.pop_next(block);
  ASSERT_NE(n, nullptr);
  n->cb.invoke();
  w.release(n);
  EXPECT_EQ(w.pop_next(block), nullptr);
  w.advance_clock(block);  // clock enters a new level-1 block between events

  while ((n = w.pop_next(4 * block)) != nullptr) {
    n->cb.invoke();
    w.release(n);
  }
  EXPECT_EQ(fired, (std::vector<int>{5, 1, 9}));
  EXPECT_TRUE(w.empty());
}

TEST(TimingWheel, ChildScheduledAtNowFiresAfterSameTickSiblings) {
  TimingWheel w;
  std::vector<int> fired;
  w.emplace(10, [&w, &fired] {
    fired.push_back(0);
    // Scheduled mid-dispatch at the current tick: lower priority than every
    // event already queued for tick 10, by seq order.
    w.emplace(w.now(), [&fired] { fired.push_back(99); });
  });
  w.emplace(10, [&fired] { fired.push_back(1); });
  w.emplace(10, [&fired] { fired.push_back(2); });
  sio::sim::EventNode* n;
  while ((n = w.pop_next(kMaxTick)) != nullptr) {
    n->cb.invoke();
    w.release(n);
  }
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 99}));
}

TEST(TimingWheel, Level0Slot2047IsTheLastDirectSlot) {
  // diff 0..2047 lands in level 0; diff 2048 is the first level-1 residency.
  // The boundary pair must still fire in time order, and a tie at the
  // boundary tick in insertion order.
  WheelSched s;
  s.schedule(2048, 0);  // level 1
  s.schedule(2047, 1);  // last level-0 slot
  s.schedule(2047, 2);  // same slot, later seq
  s.schedule(2046, 3);
  std::vector<std::uint64_t> fired;
  std::uint64_t id;
  while (s.pop(kMaxTick, id)) fired.push_back(id);
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{3, 1, 2, 0}));
}

TEST(TimingWheel, OverflowHeapThresholdIsExactlyTwoPow33) {
  // The wheel's three 2048-slot levels span diffs up to 2^33 - 1; a diff of
  // exactly 2^33 must take the overflow heap.  Both sides of the threshold,
  // scheduled heap-side first, still fire in (time, seq) order.
  const Tick edge = Tick{1} << 33;
  WheelSched s;
  s.schedule(edge, 0);      // heap (diff >> 33 == 1)
  s.schedule(edge - 1, 1);  // wheel resident (last level-2 reach)
  s.schedule(edge, 2);      // heap, same tick as id 0: seq order
  std::vector<std::uint64_t> fired;
  std::uint64_t id;
  while (s.pop(kMaxTick, id)) fired.push_back(id);
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{1, 0, 2}));
  EXPECT_EQ(s.now(), edge);
}

TEST(TimingWheel, HeapDrainsIntoWheelAsTheClockCatchesUp) {
  // An overflow-heap event whose diff shrinks below 2^33 after the clock
  // advances must demote into the wheel and interleave correctly with
  // events scheduled wheel-side at nearby ticks.
  const Tick far = (Tick{1} << 33) + 100;
  WheelSched s;
  s.schedule(far, 0);  // heap at schedule time
  s.schedule(10, 1);
  std::uint64_t id;
  ASSERT_TRUE(s.pop(kMaxTick, id));
  EXPECT_EQ(id, 1);
  // now == 10: `far` is within wheel reach.  Newer same-tick and
  // earlier-tick events must order against the drained one by (time, seq).
  s.schedule(far, 2);      // same tick, later seq than the heap resident
  s.schedule(far - 1, 3);  // earlier tick, scheduled last
  std::vector<std::uint64_t> fired;
  while (s.pop(kMaxTick, id)) fired.push_back(id);
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{3, 0, 2}));
  EXPECT_EQ(s.now(), far);
}

TEST(TimingWheel, NodesAreRecycledThroughTheFreelist) {
  // Steady-state schedule/dispatch churn must not grow the arena: after the
  // first dispatch returns a node, subsequent single-event cycles reuse it.
  TimingWheel w;
  int hits = 0;
  for (int i = 0; i < 10'000; ++i) {
    w.emplace(w.now() + 1, [&hits] { ++hits; });
    sio::sim::EventNode* n = w.pop_next(kMaxTick);
    ASSERT_NE(n, nullptr);
    n->cb.invoke();
    w.release(n);
  }
  EXPECT_EQ(hits, 10'000);
  EXPECT_TRUE(w.empty());
  EXPECT_EQ(w.now(), 10'000);
}

// ---- InlineCallback -------------------------------------------------------

TEST(InlineCallback, SmallCapturesStayInline) {
  int x = 0;
  auto small = [&x] { ++x; };
  static_assert(InlineCallback::stores_inline<decltype(small)>());
  InlineCallback cb;
  cb.emplace(small);
  EXPECT_TRUE(static_cast<bool>(cb));
  EXPECT_FALSE(cb.is_resume());
  cb.invoke();
  cb.invoke();
  EXPECT_EQ(x, 2);
  cb.reset();
  EXPECT_FALSE(static_cast<bool>(cb));
}

TEST(InlineCallback, ThreeWordCaptureIsTheInlineBoundary) {
  struct ThreeWords {
    void* a;
    void* b;
    void* c;
    void operator()() const {}
  };
  struct FourWords {
    void* a;
    void* b;
    void* c;
    void* d;
    void operator()() const {}
  };
  static_assert(InlineCallback::stores_inline<ThreeWords>());
  static_assert(!InlineCallback::stores_inline<FourWords>());
}

TEST(InlineCallback, BoxedFallbackInvokesAndDestroys) {
  static int live = 0;
  struct Tracked {
    Tracked() { ++live; }
    Tracked(const Tracked&) { ++live; }
    ~Tracked() { --live; }
  };
  {
    int calls = 0;
    Tracked t;
    std::uint64_t pad[4] = {};
    auto big = [t, pad, &calls] {
      ++calls;
      (void)pad;
    };
    static_assert(!InlineCallback::stores_inline<decltype(big)>());
    InlineCallback cb;
    cb.emplace(big);
    cb.invoke();
    EXPECT_EQ(calls, 1);
    cb.reset();  // must delete the heap box (and its Tracked copy)
    EXPECT_EQ(live, 2);  // `t` and big's capture remain
  }
  EXPECT_EQ(live, 0);
}

TEST(InlineCallback, ReEmplaceDestroysThePreviousCallable) {
  static int live = 0;
  struct Tracked {
    Tracked() { ++live; }
    Tracked(const Tracked&) { ++live; }
    ~Tracked() { --live; }
    void operator()() const {}
  };
  InlineCallback cb;
  cb.emplace(Tracked{});
  cb.emplace([] {});  // implicit reset of the Tracked instance
  EXPECT_EQ(live, 0);
  cb.reset();
  cb.reset();  // reset is idempotent
}

TEST(InlineCallback, ResumeLaneRoundTripsTheHandle) {
  InlineCallback cb;
  const std::coroutine_handle<> h = std::noop_coroutine();
  cb.arm_resume(h);
  EXPECT_TRUE(cb.is_resume());
  EXPECT_EQ(cb.handle().address(), h.address());
  cb.invoke();  // resuming a noop coroutine is harmless
  cb.disarm_resume();
  EXPECT_FALSE(static_cast<bool>(cb));
  EXPECT_FALSE(cb.is_resume());
}

}  // namespace
