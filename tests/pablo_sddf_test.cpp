// Tests for the SDDF-style trace serialization: round trips, the file-name
// table, and malformed-input rejection.

#include <gtest/gtest.h>

#include <sstream>

#include "pablo/collector.hpp"
#include "pablo/sddf.hpp"
#include "sim/engine.hpp"

namespace sio::pablo {
namespace {

TraceEvent ev(sim::Tick start, sim::Tick dur, int node, FileId file, IoOp op,
              std::uint64_t off, std::uint64_t bytes) {
  TraceEvent e;
  e.start = start;
  e.duration = dur;
  e.node = node;
  e.file = file;
  e.op = op;
  e.offset = off;
  e.bytes = bytes;
  return e;
}

TEST(Sddf, RoundTripsEventsAndFileTable) {
  sim::Engine engine;
  Collector col(engine);
  const FileId fa = col.register_file("escat/input0");
  const FileId fb = col.register_file("escat/quad1");
  col.record(ev(sim::seconds(1), sim::milliseconds(3), 5, fa, IoOp::kRead, 1234, 2048));
  col.record(ev(sim::seconds(2), sim::microseconds(40), 0, fb, IoOp::kWrite, 0, 155584));
  col.record(ev(0, 1, 7, fb, IoOp::kGopen, 0, 0));

  const auto tf = from_sddf_string(to_sddf_string(col));
  ASSERT_EQ(tf.file_names.size(), 2u);
  EXPECT_EQ(tf.file_names[0], "escat/input0");
  EXPECT_EQ(tf.file_names[1], "escat/quad1");
  ASSERT_EQ(tf.events.size(), 3u);

  // Events come back sorted by start (the collector sorts before export).
  EXPECT_EQ(tf.events[0].op, IoOp::kGopen);
  EXPECT_EQ(tf.events[1].op, IoOp::kRead);
  EXPECT_EQ(tf.events[1].start, sim::seconds(1));
  EXPECT_EQ(tf.events[1].duration, sim::milliseconds(3));
  EXPECT_EQ(tf.events[1].node, 5);
  EXPECT_EQ(tf.events[1].offset, 1234u);
  EXPECT_EQ(tf.events[1].bytes, 2048u);
  EXPECT_EQ(tf.events[2].bytes, 155584u);
}

TEST(Sddf, RoundTripsLossRecords) {
  sim::Engine engine;
  Collector col(engine);
  const FileId f = col.register_file("ckpt/frame0");
  col.record(ev(1, 1, 0, f, IoOp::kWrite, 0, 4096));
  LossEvent dropped;
  dropped.at = sim::milliseconds(8170);
  dropped.target = 3;
  dropped.file = f;
  dropped.offset = 128 * 1024;
  dropped.bytes = 65536;
  dropped.torn = 0;
  col.record_loss(dropped);
  LossEvent torn = dropped;
  torn.file = kNoFile;  // serialized as "-" and parsed back to kNoFile
  torn.offset = 0;
  torn.bytes = 32768;
  torn.torn = 1;
  col.record_loss(torn);

  const auto tf = from_sddf_string(to_sddf_string(col));
  ASSERT_EQ(tf.losses.size(), 2u);
  EXPECT_EQ(tf.losses[0].at, sim::milliseconds(8170));
  EXPECT_EQ(tf.losses[0].target, 3);
  EXPECT_EQ(tf.losses[0].file, f);
  EXPECT_EQ(tf.losses[0].offset, 128u * 1024);
  EXPECT_EQ(tf.losses[0].bytes, 65536u);
  EXPECT_EQ(tf.losses[0].torn, 0u);
  EXPECT_EQ(tf.losses[1].file, kNoFile);
  EXPECT_EQ(tf.losses[1].bytes, 32768u);
  EXPECT_EQ(tf.losses[1].torn, 1u);
}

TEST(Sddf, RoundTripsIntegrityRecords) {
  sim::Engine engine;
  Collector col(engine);
  const FileId f = col.register_file("ckpt/frame0");
  col.record(ev(1, 1, 0, f, IoOp::kWrite, 0, 4096));
  IntegrityEvent rot;
  rot.at = sim::seconds(2);
  rot.kind = IntegrityKind::kBitRot;
  rot.target = 5;
  rot.file = f;
  rot.unit = 17;
  rot.bytes = 32768;
  col.record_integrity(rot);
  IntegrityEvent sweep;  // scrubber heartbeat: no file attached
  sweep.at = sim::seconds(3);
  sweep.kind = IntegrityKind::kScrubSweep;
  sweep.target = 5;
  sweep.file = kNoFile;
  sweep.unit = 0;
  sweep.bytes = 48;
  col.record_integrity(sweep);

  const auto tf = from_sddf_string(to_sddf_string(col));
  ASSERT_EQ(tf.integrity.size(), 2u);
  EXPECT_EQ(tf.integrity[0].at, sim::seconds(2));
  EXPECT_EQ(tf.integrity[0].kind, IntegrityKind::kBitRot);
  EXPECT_EQ(tf.integrity[0].target, 5);
  EXPECT_EQ(tf.integrity[0].file, f);
  EXPECT_EQ(tf.integrity[0].unit, 17u);
  EXPECT_EQ(tf.integrity[0].bytes, 32768u);
  EXPECT_EQ(tf.integrity[1].kind, IntegrityKind::kScrubSweep);
  EXPECT_EQ(tf.integrity[1].file, kNoFile);
}

TEST(Sddf, ParseIntegrityKindCoversAllNames) {
  for (int i = 0; i < kIntegrityKindCount; ++i) {
    const auto k = static_cast<IntegrityKind>(i);
    EXPECT_EQ(parse_integrity_kind(std::string(integrity_kind_name(k))), k);
  }
  EXPECT_THROW(parse_integrity_kind("cosmic-ray"), std::runtime_error);
}

TEST(Sddf, RejectsTruncatedIntegrityRecord) {
  const std::string text =
      "#SDDF-IO 1\n#fields start_ns duration_ns node file op offset bytes\n"
      "#integrity 5 bit-rot 0 -\n";
  EXPECT_THROW(from_sddf_string(text), std::runtime_error);
}

TEST(Sddf, RejectsIntegrityWithUnknownFileReference) {
  const std::string text =
      "#SDDF-IO 1\n#fields start_ns duration_ns node file op offset bytes\n"
      "#integrity 5 bit-rot 0 4 0 1024\n";
  EXPECT_THROW(from_sddf_string(text), std::runtime_error);
}

TEST(Sddf, RejectsTruncatedLossRecord) {
  const std::string text =
      "#SDDF-IO 1\n#fields start_ns duration_ns node file op offset bytes\n"
      "#loss 5 0 - 0\n";
  EXPECT_THROW(from_sddf_string(text), std::runtime_error);
}

TEST(Sddf, RejectsLossWithUnknownFileReference) {
  const std::string text =
      "#SDDF-IO 1\n#fields start_ns duration_ns node file op offset bytes\n"
      "#loss 5 0 4 0 1024 0\n";
  EXPECT_THROW(from_sddf_string(text), std::runtime_error);
}

TEST(Sddf, HandlesEventsWithoutFile) {
  std::vector<TraceEvent> events{ev(5, 1, 2, kNoFile, IoOp::kSeek, 0, 0)};
  std::ostringstream out;
  write_sddf(out, {}, events);
  const auto tf = from_sddf_string(out.str());
  ASSERT_EQ(tf.events.size(), 1u);
  EXPECT_EQ(tf.events[0].file, kNoFile);
}

TEST(Sddf, EmptyTraceRoundTrips) {
  sim::Engine engine;
  Collector col(engine);
  const auto tf = from_sddf_string(to_sddf_string(col));
  EXPECT_TRUE(tf.events.empty());
  EXPECT_TRUE(tf.file_names.empty());
}

TEST(Sddf, ParseIoOpCoversAllNames) {
  for (int i = 0; i < kIoOpCount; ++i) {
    const auto op = static_cast<IoOp>(i);
    EXPECT_EQ(parse_io_op(std::string(io_op_name(op))), op);
  }
  EXPECT_THROW(parse_io_op("fsync"), std::runtime_error);
}

TEST(Sddf, RejectsBadMagic) {
  EXPECT_THROW(from_sddf_string("not a trace\n"), std::runtime_error);
}

TEST(Sddf, RejectsTruncatedRecord) {
  const std::string text =
      "#SDDF-IO 1\n#fields start_ns duration_ns node file op offset bytes\n1 2 3\n";
  EXPECT_THROW(from_sddf_string(text), std::runtime_error);
}

TEST(Sddf, RejectsUnknownFileReference) {
  const std::string text =
      "#SDDF-IO 1\n#fields start_ns duration_ns node file op offset bytes\n"
      "1 2 3 9 read 0 0\n";
  EXPECT_THROW(from_sddf_string(text), std::runtime_error);
}

TEST(Sddf, RejectsOutOfOrderFileTable) {
  const std::string text =
      "#SDDF-IO 1\n#fields start_ns duration_ns node file op offset bytes\n"
      "#file 1 b\n";
  EXPECT_THROW(from_sddf_string(text), std::runtime_error);
}

}  // namespace
}  // namespace sio::pablo
