// Tests for the sim-sanitizer runtime checks (SIO_SIM_CHECKS): deadlock
// detection with waiter provenance, schedule-in-the-past diagnostics, and
// double-resume detection.

#include <gtest/gtest.h>

#include <coroutine>
#include <functional>
#include <string>

#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace sio::sim {
namespace {

std::string message_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const SimCheckError& e) {
    return e.what();
  }
  return "";
}

Task<void> wait_forever(Event& ev) { co_await ev.wait(); }

TEST(SimChecks, DrainedQueueWithLiveTasksIsADeadlock) {
  Engine e;
  Event ev(e);  // never set
  e.spawn(wait_forever(ev));
  EXPECT_THROW(e.run(), DeadlockError);
  // The check is non-fatal: signal the event and the simulation recovers.
  ev.set();
  e.run();
  EXPECT_EQ(e.live_tasks(), 0u);
}

TEST(SimChecks, DeadlockReportCountsStuckTasksAndNamesThePrimitive) {
  Engine e;
  Event ev(e, "never-signaled-condition");
  e.spawn(wait_forever(ev));
  e.spawn(wait_forever(ev));
  const std::string msg = message_of([&] { e.run(); });
  EXPECT_NE(msg.find("deadlock"), std::string::npos) << msg;
  EXPECT_NE(msg.find("2 live task(s)"), std::string::npos) << msg;
  EXPECT_NE(msg.find("2x Event(never-signaled-condition)"), std::string::npos) << msg;
  ev.set();
  e.run();
}

Task<void> lock_and_leak(Mutex& m) {
  co_await m.lock();
  // Never unlocks: the next acquirer is stuck forever.  This task itself
  // completes, so it does not count toward the live-task total.
}

Task<void> lock_again(Mutex& m) {
  co_await m.lock();
  m.unlock();
}

TEST(SimChecks, DeadlockReportAggregatesProvenanceAcrossPrimitives) {
  Engine e;
  Mutex m(e, "cpu-queue");
  WaitGroup wg(e, "join");
  wg.add(1);  // no worker will ever call done()
  auto joiner = [](WaitGroup& g) -> Task<void> { co_await g.wait(); };
  e.spawn(lock_and_leak(m));
  e.spawn(lock_again(m));
  e.spawn(joiner(wg));
  const std::string msg = message_of([&] { e.run(); });
  EXPECT_NE(msg.find("2 live task(s)"), std::string::npos) << msg;
  EXPECT_NE(msg.find("1x Mutex(cpu-queue)"), std::string::npos) << msg;
  EXPECT_NE(msg.find("1x WaitGroup(join)"), std::string::npos) << msg;
  m.unlock();
  wg.done();
  e.run();
  EXPECT_EQ(e.live_tasks(), 0u);
}

TEST(SimChecks, BlockedWaiterBookkeepingClearsOnWake) {
  Engine e;
  Event ev(e);
  e.spawn(wait_forever(ev));
  e.run_until(0);
  EXPECT_EQ(e.blocked_waiters(), 1u);
  ev.set();
  e.run();
  EXPECT_EQ(e.blocked_waiters(), 0u);
  EXPECT_EQ(e.live_tasks(), 0u);
}

TEST(SimChecks, RunUntilDoesNotReportPendingTasksAsDeadlock) {
  Engine e;
  Event ev(e);
  e.spawn(wait_forever(ev));
  EXPECT_NO_THROW(e.run_until(seconds(10)));
  EXPECT_EQ(e.live_tasks(), 1u);
  ev.set();  // release so the engine drains cleanly
  e.run();
}

TEST(SimChecks, StoppedRunDoesNotReportDeadlock) {
  Engine e;
  Event ev(e);
  e.spawn(wait_forever(ev));
  e.schedule_at(seconds(1), [&] { e.stop(); });
  EXPECT_NO_THROW(e.run());
  ev.set();
  e.run();
}

TEST(SimChecks, ScheduleInThePastThrowsWithBothTimes) {
  Engine e;
  e.schedule_at(seconds(3), [] {});
  e.run();
  ASSERT_EQ(e.now(), seconds(3));
  const std::string msg = message_of([&] { e.schedule_at(seconds(1), [] {}); });
  EXPECT_NE(msg.find("in the past"), std::string::npos) << msg;
  EXPECT_NE(msg.find(std::to_string(seconds(1))), std::string::npos) << msg;
  EXPECT_NE(msg.find(std::to_string(seconds(3))), std::string::npos) << msg;
}

TEST(SimChecks, ScheduleInThePastIsStillAnAssertionError) {
  // Compatibility: SchedulePastError derives from AssertionError, so code
  // written against the original contract keeps working.
  Engine e;
  e.schedule_at(seconds(2), [&] {
    EXPECT_THROW(e.schedule_at(seconds(1), [] {}), AssertionError);
  });
  e.run();
}

struct CaptureHandle {
  std::coroutine_handle<>* out;
  bool await_ready() const { return false; }
  void await_suspend(std::coroutine_handle<> h) { *out = h; }
  void await_resume() const noexcept {}
};

Task<void> capture_self(std::coroutine_handle<>* out, bool* finished) {
  co_await CaptureHandle{out};
  *finished = true;
}

TEST(SimChecks, DoublePostOfOneHandleIsDetected) {
  Engine e;
  std::coroutine_handle<> h{};
  bool finished = false;
  e.spawn(capture_self(&h, &finished));
  e.run_until(0);  // parks the task and hands us its handle
  ASSERT_TRUE(h);
  EXPECT_FALSE(finished);
  e.post(h);
  EXPECT_THROW(e.post(h), DoubleResumeError);
  e.run();  // the single queued resume completes the task
  EXPECT_TRUE(finished);
  EXPECT_EQ(e.live_tasks(), 0u);
}

TEST(SimChecks, RepostAfterResumeIsFine) {
  Engine e;
  std::coroutine_handle<> h{};
  bool finished = false;
  auto twice = [](std::coroutine_handle<>* out, bool* done) -> Task<void> {
    co_await CaptureHandle{out};
    co_await CaptureHandle{out};
    *done = true;
  };
  e.spawn(twice(&h, &finished));
  e.run_until(0);
  e.post(h);  // first wake
  e.run_until(0);
  e.post(h);  // second wake, after the first actually ran
  EXPECT_NO_THROW(e.run());
  EXPECT_TRUE(finished);
}

Task<void> block_on_channel(Channel<int>& ch, int* got) { *got = co_await ch.pop(); }

TEST(SimChecks, ChannelProvenanceAppearsInDeadlockReport) {
  Engine e;
  Channel<int> ch(e, "work-queue");
  int got = 0;
  e.spawn(block_on_channel(ch, &got));
  const std::string msg = message_of([&] { e.run(); });
  EXPECT_NE(msg.find("1x Channel(work-queue)"), std::string::npos) << msg;
  ch.push(7);
  e.run();
  EXPECT_EQ(got, 7);
}

TEST(SimChecks, UnnamedPrimitiveReportsItsKind) {
  Engine e;
  Semaphore s(e, 0);
  auto taker = [](Semaphore& sem) -> Task<void> { co_await sem.acquire(); };
  e.spawn(taker(s));
  const std::string msg = message_of([&] { e.run(); });
  EXPECT_NE(msg.find("1x Semaphore"), std::string::npos) << msg;
  s.release();
  e.run();
}

}  // namespace
}  // namespace sio::sim
