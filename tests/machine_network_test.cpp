// Tests for the analytic interconnect model: point-to-point cost structure,
// collective timing, and the coroutine send path.

#include <gtest/gtest.h>

#include "machine/machine.hpp"
#include "machine/network.hpp"

namespace sio::hw {
namespace {

struct Fixture {
  sim::Engine engine;
  Mesh2D mesh{16, 32};
  NetConfig cfg{};
  Network net{engine, mesh, cfg};
};

TEST(Network, MessageTimeGrowsWithDistance) {
  Fixture f;
  const auto near = f.net.message_time(0, 1, 1024);
  const auto far = f.net.message_time(0, 511, 1024);
  EXPECT_LT(near, far);
}

TEST(Network, MessageTimeGrowsWithPayload) {
  Fixture f;
  EXPECT_LT(f.net.message_time(0, 5, 64), f.net.message_time(0, 5, 1024 * 1024));
}

TEST(Network, SelfMessageStillPaysSoftwareOverhead) {
  Fixture f;
  EXPECT_EQ(f.net.message_time(3, 3, 0), f.cfg.sw_overhead);
}

TEST(Network, PayloadTimeMatchesBandwidth) {
  Fixture f;
  const std::uint64_t bytes = 1024 * 1024;
  const sim::Tick t = f.net.message_time(0, 0, bytes) - f.cfg.sw_overhead;
  const double rate = static_cast<double>(bytes) / static_cast<double>(t);
  EXPECT_NEAR(rate, f.cfg.bytes_per_tick, 0.001);
}

TEST(Network, BroadcastArrivalRankZeroIsFree) {
  Fixture f;
  EXPECT_EQ(f.net.broadcast_arrival(0, 128, 4096), 0);
}

TEST(Network, BroadcastArrivalMonotoneInRankRounds) {
  Fixture f;
  // Rank 1 receives in round 1, rank 127 in round 7.
  EXPECT_LT(f.net.broadcast_arrival(1, 128, 4096), f.net.broadcast_arrival(127, 128, 4096));
}

TEST(Network, BroadcastTimeBoundsEveryArrival) {
  Fixture f;
  const auto total = f.net.broadcast_time(128, 4096);
  for (int r = 0; r < 128; ++r) {
    EXPECT_LE(f.net.broadcast_arrival(r, 128, 4096), total);
  }
}

TEST(Network, GatherScalesWithGroupPayload) {
  Fixture f;
  EXPECT_LT(f.net.gather_time(16, 2048), f.net.gather_time(128, 2048));
}

TEST(Network, GatherOfOneNodeIsCheap) {
  Fixture f;
  EXPECT_LE(f.net.gather_time(1, 1 << 20), f.cfg.sw_overhead * 2);
}

sim::Task<void> do_send(Network& net, NodeId a, NodeId b, std::uint64_t bytes) {
  co_await net.send(a, b, bytes);
}

TEST(Network, SendOccupiesSimulatedTimeAndCountsTraffic) {
  Fixture f;
  f.engine.spawn(do_send(f.net, 0, 100, 64 * 1024));
  f.engine.run();
  EXPECT_EQ(f.engine.now(), f.net.message_time(0, 100, 64 * 1024));
  EXPECT_EQ(f.net.bytes_moved(), 64u * 1024);
  EXPECT_EQ(f.net.messages_sent(), 1u);
}

TEST(Machine, CaltechParagonConfig) {
  const auto cfg = Machine::caltech_paragon(128);
  EXPECT_EQ(cfg.mesh_rows, 16);
  EXPECT_EQ(cfg.mesh_cols, 32);
  EXPECT_EQ(cfg.compute_nodes, 128);
  EXPECT_EQ(cfg.io_nodes, 16);
  EXPECT_EQ(cfg.stripe_unit, 64u * 1024);
}

TEST(Machine, RejectsMoreComputeNodesThanMesh) {
  auto cfg = Machine::caltech_paragon(128);
  cfg.compute_nodes = 1024;
  EXPECT_THROW(Machine m(cfg), sim::AssertionError);
}

TEST(Machine, OsProfilesDifferAcrossReleases) {
  const auto r12 = osf_r12();
  const auto r13 = osf_r13();
  EXPECT_FALSE(r12.has_masync);
  EXPECT_TRUE(r13.has_masync);
  // The R1.3 metadata regression that motivated gopen.
  EXPECT_GT(r13.open_service, r12.open_service);
}

}  // namespace
}  // namespace sio::hw
