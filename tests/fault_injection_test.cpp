// End-to-end fault-injection tests: degraded disks, server crash/restart
// with idempotent replay, lossy links, per-run byte-identity under faults,
// and the resilience report.  Workloads are scaled down so each faulted run
// finishes in milliseconds; the sim-sanitizer (on by default) turns any
// parked-forever client into a deadlock error, so a passing run doubles as
// a no-deadlock check.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/experiment.hpp"
#include "core/figures.hpp"
#include "fault/plan.hpp"
#include "pablo/resilience.hpp"
#include "pablo/sddf.hpp"

namespace sio::core {
namespace {

apps::escat::Config tiny_escat() {
  apps::escat::Workload w;
  w.nodes = 16;
  w.channels = 2;
  w.init_small_reads = 8;
  w.quad_cycles = 8;  // 8 * 16 nodes * 2 KiB = exactly one 16 KiB reload wave
  w.reload_record = 16 * 1024;
  w.phase1_setup_compute = sim::seconds(1);
  w.phase2_cycle_compute = sim::seconds(1);
  w.phase3_energy_compute = sim::seconds(1);
  return apps::escat::make_config(apps::escat::Version::C, w);
}

apps::prism::Config tiny_prism() {
  apps::prism::Workload w;
  w.nodes = 8;
  w.steps = 60;
  w.checkpoint_every = 20;
  w.step_compute = sim::milliseconds(400);
  w.param_reads = 10;
  w.conn_text_reads = 20;
  w.conn_binary_reads = 5;
  w.phase1_setup = {sim::seconds(1), sim::seconds(1), sim::seconds(1)};
  return apps::prism::make_config(apps::prism::Version::C, w);
}

std::string fingerprint(const RunResult& r) {
  std::ostringstream out;
  out << "label=" << r.label << " exec_time=" << r.exec_time
      << " events_processed=" << r.events_processed << "\n";
  for (const auto& ev : r.events) {
    out << ev.node << " " << static_cast<int>(ev.op) << " " << ev.file << " " << ev.start << "+"
        << ev.duration << " " << ev.bytes << " " << ev.offset << "\n";
  }
  for (const auto& f : r.fault_events) {
    out << "fault " << f.at << " " << pablo::fault_kind_name(f.kind) << " " << f.node << " "
        << f.target << " " << f.info << "\n";
  }
  const auto& rc = r.resilience;
  out << "retries=" << rc.retries << " timeouts=" << rc.timeouts << " failed=" << rc.failed_ops
      << " replayed=" << rc.replayed_ops << " coalesced=" << rc.coalesced_ops
      << " dropped=" << rc.dropped_messages
      << " degraded=" << rc.degraded_disk_ops << " stuck=" << rc.stuck_disk_ops
      << " crashes=" << rc.server_crashes << "\n";
  return out.str();
}

TEST(FaultInjection, DiskDegradedEscatRetriesAndCostsIoTime) {
  const auto baseline = run_escat(tiny_escat(), 11);
  const auto faulted = run_escat(tiny_escat(), fault::FaultPlan::disk_degraded(11), 11);

  // The run completed (sanitizer on: a parked client would have thrown).
  EXPECT_GT(faulted.exec_time, 0);
  // Stuck first accesses exceed the op deadline, so retries are guaranteed.
  EXPECT_GT(faulted.resilience.timeouts, 0u);
  EXPECT_GT(faulted.resilience.retries, 0u);
  EXPECT_EQ(faulted.resilience.failed_ops, 0u);
  EXPECT_GT(faulted.resilience.stuck_disk_ops, 0u);
  EXPECT_GT(faulted.resilience.degraded_disk_ops, 0u);
  // Parity reconstruction + stuck hangs make I/O strictly more expensive.
  EXPECT_GT(faulted.io_time(), baseline.io_time());
  // Injections were recorded for the trace.
  EXPECT_FALSE(faulted.fault_events.empty());
}

TEST(FaultInjection, FaultedRunsAreByteIdentical) {
  const auto plan = fault::FaultPlan::disk_degraded(5);
  const auto r1 = run_escat(tiny_escat(), plan, 5);
  const auto r2 = run_escat(tiny_escat(), plan, 5);
  EXPECT_EQ(fingerprint(r1), fingerprint(r2));

  const auto p1 = run_prism(tiny_prism(), fault::FaultPlan::io_node_crash(5), 5);
  const auto p2 = run_prism(tiny_prism(), fault::FaultPlan::io_node_crash(5), 5);
  EXPECT_EQ(fingerprint(p1), fingerprint(p2));
}

TEST(FaultInjection, ServerCrashRecoversAndReplaysWrites) {
  const auto r = run_escat(tiny_escat(), fault::FaultPlan::io_node_crash(3), 3);
  EXPECT_GT(r.exec_time, 0);
  EXPECT_EQ(r.resilience.server_crashes, 1u);
  // Clients rode out the outage on retries...
  EXPECT_GT(r.resilience.retries, 0u);
  EXPECT_EQ(r.resilience.failed_ops, 0u);
  // ...and the server absorbed re-driven duplicates: acknowledged from the
  // completed-id set (replay) or joined onto a still-executing abandoned
  // twin (coalesce) instead of executing twice.
  EXPECT_GT(r.resilience.replayed_ops + r.resilience.coalesced_ops, 0u);
  // Crash and restart were both recorded.
  bool crash_seen = false, restart_seen = false;
  for (const auto& f : r.fault_events) {
    crash_seen |= f.kind == pablo::FaultKind::kServerCrash;
    restart_seen |= f.kind == pablo::FaultKind::kServerRestart;
  }
  EXPECT_TRUE(crash_seen);
  EXPECT_TRUE(restart_seen);
}

TEST(FaultInjection, LossyLinkDropsMessagesAndClientsRetry) {
  // Aggressive custom plan: every message toward io nodes 0-7 has a 30% drop
  // chance for the whole run, so drops are statistically certain.
  fault::FaultPlan plan;
  plan.name = "lossy";
  plan.seed = 99;
  plan.retry = fault::FaultPlan::slow_link(0).retry;
  for (int io = 0; io < 8; ++io) {
    plan.link_faults.push_back({io, 0, sim::seconds(36000), /*down=*/false, 0, 0.3});
  }
  const auto r = run_escat(tiny_escat(), plan, 7);
  EXPECT_GT(r.exec_time, 0);
  EXPECT_GT(r.resilience.dropped_messages, 0u);
  EXPECT_GT(r.resilience.retries, 0u);
  EXPECT_EQ(r.resilience.failed_ops, 0u);
}

TEST(FaultInjection, FaultEventsRoundTripThroughSddf) {
  const auto r = run_escat(tiny_escat(), fault::FaultPlan::disk_degraded(2), 2);
  ASSERT_FALSE(r.fault_events.empty());

  std::ostringstream out;
  pablo::write_sddf(out, r.file_names, r.events, r.fault_events);
  const auto tf = pablo::from_sddf_string(out.str());
  ASSERT_EQ(tf.faults.size(), r.fault_events.size());
  for (std::size_t i = 0; i < tf.faults.size(); ++i) {
    EXPECT_EQ(tf.faults[i].at, r.fault_events[i].at);
    EXPECT_EQ(tf.faults[i].kind, r.fault_events[i].kind);
    EXPECT_EQ(tf.faults[i].node, r.fault_events[i].node);
    EXPECT_EQ(tf.faults[i].target, r.fault_events[i].target);
    EXPECT_EQ(tf.faults[i].info, r.fault_events[i].info);
  }
  EXPECT_EQ(tf.events.size(), r.events.size());
}

TEST(FaultInjection, ResilienceSummaryBucketsClientEventsByPhase) {
  const auto baseline = run_escat(tiny_escat(), 13);
  const auto r = run_escat(tiny_escat(), fault::FaultPlan::disk_degraded(13), 13);

  std::vector<pablo::PhaseWindow> windows;
  for (const auto& p : r.phases) windows.push_back({p.name, p.t0, p.t1});
  const auto s = pablo::summarize_resilience(r.fault_events, windows);

  EXPECT_EQ(s.injected, fault::FaultPlan::disk_degraded(13).injection_count() +
                            /*rebuild-complete records*/ 2u);
  EXPECT_EQ(s.retries, r.resilience.retries);
  EXPECT_EQ(s.timeouts, r.resilience.timeouts);
  std::uint64_t phase_retries = 0;
  for (const auto& p : s.phases) phase_retries += p.retries;
  EXPECT_EQ(phase_retries, s.retries);

  const auto report = render_resilience_summary(r, baseline);
  EXPECT_NE(report.find("Resilience"), std::string::npos);
  EXPECT_NE(report.find("retries"), std::string::npos);
}

TEST(FaultInjection, FaultFreeRunMatchesNoPlanRun) {
  // A fault-free plan must leave the run byte-identical with the plain API.
  const auto a = run_escat(tiny_escat(), 17);
  const auto b = run_escat(tiny_escat(), fault::FaultPlan::fault_free(), 17);
  EXPECT_EQ(fingerprint(a), fingerprint(b));
  EXPECT_TRUE(b.fault_events.empty());
}

}  // namespace
}  // namespace sio::core
