// Unit tests for the coroutine synchronization primitives: FIFO ordering,
// hand-off semantics, reusability, and interaction with simulated time.

#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace sio::sim {
namespace {

TEST(Event, WaitBeforeSetSuspends) {
  Engine e;
  Event ev(e);
  std::vector<int> order;
  auto waiter = [](Engine&, Event& event, std::vector<int>* ord) -> Task<void> {
    co_await event.wait();
    ord->push_back(1);
  };
  e.spawn(waiter(e, ev, &order));
  e.schedule_at(seconds(5), [&] { ev.set(); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_TRUE(ev.is_set());
  EXPECT_EQ(e.now(), seconds(5));
}

TEST(Event, WaitAfterSetCompletesImmediately) {
  Engine e;
  Event ev(e);
  ev.set();
  bool done = false;
  auto waiter = [](Event& event, bool* flag) -> Task<void> {
    co_await event.wait();
    *flag = true;
  };
  e.spawn(waiter(ev, &done));
  e.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(e.now(), 0);
}

TEST(Event, SetIsIdempotentAndWakesAllWaitersInOrder) {
  Engine e;
  Event ev(e);
  std::vector<int> order;
  auto waiter = [](Event& event, std::vector<int>* ord, int id) -> Task<void> {
    co_await event.wait();
    ord->push_back(id);
  };
  for (int i = 0; i < 5; ++i) e.spawn(waiter(ev, &order, i));
  e.schedule_at(seconds(1), [&] {
    ev.set();
    ev.set();
  });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

Task<void> lock_hold_unlock(Engine& e, Mutex& m, Tick hold, std::vector<int>* order, int id) {
  co_await m.lock();
  order->push_back(id);
  co_await e.delay(hold);
  m.unlock();
}

TEST(Mutex, UncontendedAcquireIsImmediate) {
  Engine e;
  Mutex m(e);
  std::vector<int> order;
  e.spawn(lock_hold_unlock(e, m, seconds(1), &order, 7));
  e.run_until(0);
  EXPECT_EQ(order, (std::vector<int>{7}));  // acquired at t=0, no wait
  e.run();
  EXPECT_FALSE(m.locked());
}

TEST(Mutex, GrantsInFifoOrder) {
  Engine e;
  Mutex m(e);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) e.spawn(lock_hold_unlock(e, m, seconds(1), &order, i));
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(e.now(), seconds(4));
  EXPECT_FALSE(m.locked());
}

TEST(Mutex, QueueLengthReflectsWaiters) {
  Engine e;
  Mutex m(e);
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) e.spawn(lock_hold_unlock(e, m, seconds(1), &order, i));
  e.run_until(seconds(0));
  EXPECT_TRUE(m.locked());
  EXPECT_EQ(m.queue_length(), 2u);
  e.run();
}

Task<void> scoped_user(Engine& e, Mutex& m, std::vector<int>* order, int id) {
  auto guard = co_await m.scoped();
  order->push_back(id);
  co_await e.delay(seconds(1));
  // guard releases on destruction
}

TEST(Mutex, ScopedLockReleasesAutomatically) {
  Engine e;
  Mutex m(e);
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) e.spawn(scoped_user(e, m, &order, i));
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_FALSE(m.locked());
}

TEST(Mutex, UnlockWithoutLockAsserts) {
  Engine e;
  Mutex m(e);
  EXPECT_THROW(m.unlock(), AssertionError);
}

Task<void> sem_user(Engine& e, Semaphore& s, std::vector<Tick>* starts) {
  co_await s.acquire();
  starts->push_back(e.now());
  co_await e.delay(seconds(2));
  s.release();
}

TEST(Semaphore, LimitsConcurrency) {
  Engine e;
  Semaphore s(e, 2);
  std::vector<Tick> starts;
  for (int i = 0; i < 6; ++i) e.spawn(sem_user(e, s, &starts));
  e.run();
  ASSERT_EQ(starts.size(), 6u);
  // Two start immediately, then pairs every 2 seconds.
  EXPECT_EQ(starts[0], 0);
  EXPECT_EQ(starts[1], 0);
  EXPECT_EQ(starts[2], seconds(2));
  EXPECT_EQ(starts[3], seconds(2));
  EXPECT_EQ(starts[4], seconds(4));
  EXPECT_EQ(starts[5], seconds(4));
}

TEST(Semaphore, ReleaseWithoutWaitersIncrementsCount) {
  Engine e;
  Semaphore s(e, 0);
  s.release();
  EXPECT_EQ(s.available(), 1);
}

Task<void> barrier_user(Engine& e, Barrier& b, Tick arrival, std::vector<Tick>* releases) {
  co_await e.delay(arrival);
  co_await b.arrive_and_wait();
  releases->push_back(e.now());
}

TEST(Barrier, ReleasesWhenLastArrives) {
  Engine e;
  Barrier b(e, 3);
  std::vector<Tick> releases;
  e.spawn(barrier_user(e, b, seconds(1), &releases));
  e.spawn(barrier_user(e, b, seconds(5), &releases));
  e.spawn(barrier_user(e, b, seconds(3), &releases));
  e.run();
  ASSERT_EQ(releases.size(), 3u);
  for (Tick t : releases) EXPECT_EQ(t, seconds(5));
}

Task<void> barrier_cycler(Engine& e, Barrier& b, int rounds, Tick step, std::vector<Tick>* log) {
  for (int i = 0; i < rounds; ++i) {
    co_await e.delay(step);
    co_await b.arrive_and_wait();
    log->push_back(e.now());
  }
}

TEST(Barrier, IsReusableAcrossGenerations) {
  Engine e;
  Barrier b(e, 2);
  std::vector<Tick> log;
  e.spawn(barrier_cycler(e, b, 3, seconds(1), &log));
  e.spawn(barrier_cycler(e, b, 3, seconds(2), &log));
  e.run();
  ASSERT_EQ(log.size(), 6u);
  // Each round completes at the slower task's pace: 2, 4, 6 seconds.
  EXPECT_EQ(log[0], seconds(2));
  EXPECT_EQ(log[1], seconds(2));
  EXPECT_EQ(log[2], seconds(4));
  EXPECT_EQ(log[3], seconds(4));
  EXPECT_EQ(log[4], seconds(6));
  EXPECT_EQ(log[5], seconds(6));
}

Task<void> wg_worker(Engine& e, WaitGroup& wg, Tick d) {
  co_await e.delay(d);
  wg.done();
}

Task<void> wg_joiner(Engine& e, WaitGroup& wg, Tick* done_at) {
  co_await wg.wait();
  *done_at = e.now();
}

TEST(WaitGroup, WaitsForAllWorkers) {
  Engine e;
  WaitGroup wg(e);
  Tick done_at = -1;
  wg.add(3);
  e.spawn(wg_worker(e, wg, seconds(1)));
  e.spawn(wg_worker(e, wg, seconds(7)));
  e.spawn(wg_worker(e, wg, seconds(3)));
  e.spawn(wg_joiner(e, wg, &done_at));
  e.run();
  EXPECT_EQ(done_at, seconds(7));
}

TEST(WaitGroup, WaitOnZeroCompletesImmediately) {
  Engine e;
  WaitGroup wg(e);
  Tick done_at = -1;
  e.spawn(wg_joiner(e, wg, &done_at));
  e.run();
  EXPECT_EQ(done_at, 0);
}

TEST(WaitGroup, DoneBelowZeroAsserts) {
  Engine e;
  WaitGroup wg(e);
  EXPECT_THROW(wg.done(), AssertionError);
}

Task<void> producer(Engine& e, Channel<int>& ch, int n) {
  for (int i = 0; i < n; ++i) {
    co_await e.delay(seconds(1));
    ch.push(i);
  }
}

Task<void> consumer(Engine&, Channel<int>& ch, int n, std::vector<int>* got) {
  for (int i = 0; i < n; ++i) {
    got->push_back(co_await ch.pop());
  }
}

TEST(Channel, DeliversInFifoOrder) {
  Engine e;
  Channel<int> ch(e);
  std::vector<int> got;
  e.spawn(producer(e, ch, 5));
  e.spawn(consumer(e, ch, 5, &got));
  e.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Channel, MultipleConsumersShareValues) {
  Engine e;
  Channel<int> ch(e);
  std::vector<int> got_a, got_b;
  e.spawn(consumer(e, ch, 2, &got_a));
  e.spawn(consumer(e, ch, 2, &got_b));
  e.spawn(producer(e, ch, 4));
  e.run();
  EXPECT_EQ(got_a.size() + got_b.size(), 4u);
  std::vector<int> all;
  all.insert(all.end(), got_a.begin(), got_a.end());
  all.insert(all.end(), got_b.begin(), got_b.end());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Channel, PushBeforePopBuffers) {
  Engine e;
  Channel<int> ch(e);
  ch.push(42);
  ch.push(43);
  EXPECT_EQ(ch.size(), 2u);
  std::vector<int> got;
  e.spawn(consumer(e, ch, 2, &got));
  e.run();
  EXPECT_EQ(got, (std::vector<int>{42, 43}));
  EXPECT_TRUE(ch.empty());
}

}  // namespace
}  // namespace sio::sim
