// Tests for the §7 design-principle policies: request aggregation,
// prefetching presets, and write-behind configuration.

#include <gtest/gtest.h>

#include "apps/common.hpp"
#include "machine/machine.hpp"
#include "pablo/collector.hpp"
#include "pfs/pfs.hpp"
#include "pfs/policies.hpp"

namespace sio::pfs {
namespace {

struct Fixture {
  hw::Machine machine;
  pablo::Collector collector;
  Pfs fs;

  explicit Fixture(ServerConfig server = {})
      : machine(hw::Machine::caltech_paragon(8)),
        collector(machine.engine()),
        fs(machine, collector, PfsConfig{server, ContentPolicy::kExtentsOnly}) {}

  void run(sim::Task<void> t) {
    machine.engine().spawn(std::move(t));
    machine.engine().run();
  }
};

TEST(Presets, WithPrefetchSetsUnits) {
  const auto cfg = with_prefetch(ServerConfig{}, 3);
  EXPECT_EQ(cfg.prefetch_units, 3);
}

TEST(Presets, WithWriteBehindSetsDirtyLimit) {
  const auto cfg = with_write_behind(ServerConfig{}, 7);
  EXPECT_EQ(cfg.dirty_limit, 7u);
}

sim::Task<void> aggregate_sequential(Fixture& f, RequestAggregator& agg, int writes,
                                     std::uint64_t chunk) {
  for (int i = 0; i < writes; ++i) {
    co_await agg.submit(static_cast<std::uint64_t>(i) * chunk, chunk);
  }
  co_await agg.drain();
}

TEST(RequestAggregator, CoalescesSmallSequentialWrites) {
  Fixture f;
  auto& file = f.fs.stage_file("p/agg", 0);
  RequestAggregator agg(f.fs, file, 0);
  // 64 writes of 2 KB = 128 KB = exactly two stripe units.
  f.run(aggregate_sequential(f, agg, 64, 2048));
  EXPECT_EQ(agg.submitted_bytes(), 64u * 2048);
  EXPECT_EQ(agg.flushes(), 2u);  // two unit-sized transfers, not 64 small ones
  EXPECT_EQ(file.size, 64u * 2048);
}

sim::Task<void> aggregate_gap(Fixture& f, RequestAggregator& agg) {
  co_await agg.submit(0, 1000);
  co_await agg.submit(5000, 1000);  // non-contiguous -> flush pending first
  co_await agg.drain();
}

TEST(RequestAggregator, NonContiguousSubmissionFlushes) {
  Fixture f;
  auto& file = f.fs.stage_file("p/gap", 0);
  RequestAggregator agg(f.fs, file, 0);
  f.run(aggregate_gap(f, agg));
  EXPECT_EQ(agg.flushes(), 2u);
}

TEST(RequestAggregator, DrainOnEmptyIsNoop) {
  Fixture f;
  auto& file = f.fs.stage_file("p/empty", 0);
  RequestAggregator agg(f.fs, file, 0);
  f.run(agg.drain());
  EXPECT_EQ(agg.flushes(), 0u);
}

// The headline policy claim: a version-A-style stream of small unaligned
// writes costs less total time when routed through the aggregator.
sim::Task<void> direct_small_writes(Fixture& f, FileState& file, int n) {
  for (int i = 0; i < n; ++i) {
    co_await f.fs.transfer(0, file, static_cast<std::uint64_t>(i) * 2048, 2048,
                           /*is_write=*/true, /*buffered=*/true);
  }
}

TEST(RequestAggregator, BeatsDirectSmallTransfers) {
  sim::Tick direct, aggregated;
  {
    Fixture f;
    auto& file = f.fs.stage_file("p/direct", 0);
    f.run(direct_small_writes(f, file, 256));
    direct = f.machine.engine().now();
  }
  {
    Fixture f;
    auto& file = f.fs.stage_file("p/viaagg", 0);
    RequestAggregator agg(f.fs, file, 0);
    f.run(aggregate_sequential(f, agg, 256, 2048));
    aggregated = f.machine.engine().now();
  }
  EXPECT_LT(aggregated, direct);
}

// Prefetching pays off on a sequential whole-file scan.
sim::Task<void> sequential_scan(Fixture& f, int units) {
  auto& file = f.fs.stage_file("p/scan", static_cast<std::uint64_t>(units) * 64 * 1024);
  for (int u = 0; u < units; ++u) {
    co_await f.fs.fetch_unit(0, file, static_cast<std::uint64_t>(u));
  }
}

TEST(Prefetch, SpeedsUpSequentialScan) {
  sim::Tick base, prefetched;
  {
    Fixture f;
    f.run(sequential_scan(f, 128));
    base = f.machine.engine().now();
  }
  {
    Fixture f(with_prefetch(ServerConfig{}, 2));
    f.run(sequential_scan(f, 128));
    prefetched = f.machine.engine().now();
  }
  EXPECT_LT(prefetched, base);
}

TEST(WriteBehind, WriteThroughIsSlowerThanWriteBack) {
  auto run_writes = [](std::size_t dirty_limit) {
    Fixture f(with_write_behind(ServerConfig{}, dirty_limit));
    auto& file = f.fs.stage_file("p/wb", 0);
    f.machine.engine().spawn([](Fixture& fx, FileState& fl) -> sim::Task<void> {
      for (int i = 0; i < 64; ++i) {
        co_await fx.fs.transfer(0, fl, static_cast<std::uint64_t>(i) * 65536, 65536,
                                /*is_write=*/true, /*buffered=*/true);
      }
    }(f, file));
    f.machine.engine().run();
    return f.machine.engine().now();
  };
  const sim::Tick write_back = run_writes(128);
  const sim::Tick write_through = run_writes(0);
  EXPECT_LT(write_back, write_through);
}

}  // namespace
}  // namespace sio::pfs
