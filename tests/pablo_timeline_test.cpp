// Tests for timeline extraction, burst profiling and the report renderers.

#include <gtest/gtest.h>

#include "pablo/collector.hpp"
#include "pablo/report.hpp"
#include "pablo/timeline.hpp"
#include "sim/engine.hpp"

namespace sio::pablo {
namespace {

TraceEvent ev(sim::Tick start, IoOp op, std::uint64_t bytes, sim::Tick dur = 1, FileId file = 0) {
  TraceEvent e;
  e.start = start;
  e.duration = dur;
  e.op = op;
  e.bytes = bytes;
  e.file = file;
  return e;
}

struct Fixture {
  sim::Engine engine;
  Collector col{engine};
  FileId fa = col.register_file("a");
  FileId fb = col.register_file("b");
};

TEST(Timeline, ExtractsOpInStartOrder) {
  Fixture f;
  f.col.record(ev(sim::seconds(3), IoOp::kRead, 30));
  f.col.record(ev(sim::seconds(1), IoOp::kRead, 10));
  f.col.record(ev(sim::seconds(2), IoOp::kWrite, 999));
  const auto series = timeline(f.col, IoOp::kRead);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].bytes, 10u);
  EXPECT_EQ(series[1].bytes, 30u);
}

TEST(Timeline, FileFilterWorks) {
  Fixture f;
  f.col.record(ev(0, IoOp::kRead, 1, 1, f.fa));
  f.col.record(ev(0, IoOp::kRead, 2, 1, f.fb));
  EXPECT_EQ(timeline(f.col, IoOp::kRead, f.fa).size(), 1u);
  EXPECT_EQ(timeline(f.col, IoOp::kRead, f.fb).size(), 1u);
}

TEST(BurstProfile, BinsOpsAndBytes) {
  std::vector<TimelinePoint> series;
  for (int i = 0; i < 10; ++i) {
    series.push_back({sim::seconds(i), 100, 1, 0});
  }
  const auto profile = burst_profile(series, 0, sim::seconds(10), 5);
  ASSERT_EQ(profile.size(), 5u);
  for (const auto& w : profile) {
    EXPECT_EQ(w.ops, 2u);
    EXPECT_EQ(w.bytes, 200u);
  }
}

TEST(BurstProfile, CountsSeparatedBursts) {
  std::vector<TimelinePoint> series;
  // Three bursts: t in [0,1), [4,5), [8,9) over a 10s span, 10 windows.
  for (sim::Tick t : {sim::seconds(0), sim::milliseconds(500), sim::seconds(4), sim::seconds(8)}) {
    series.push_back({t, 1, 1, 0});
  }
  const auto profile = burst_profile(series, 0, sim::seconds(10), 10);
  EXPECT_EQ(count_bursts(profile), 3);
}

TEST(BurstProfile, OutOfRangePointsIgnored) {
  std::vector<TimelinePoint> series{{sim::seconds(-1), 1, 1, 0}, {sim::seconds(99), 1, 1, 0}};
  const auto profile = burst_profile(series, 0, sim::seconds(10), 5);
  EXPECT_EQ(count_bursts(profile), 0);
}

TEST(LargestGap, FindsMaxSpacing) {
  std::vector<TimelinePoint> series{{0, 1, 1, 0},
                                    {sim::seconds(1), 1, 1, 0},
                                    {sim::seconds(7), 1, 1, 0},
                                    {sim::seconds(8), 1, 1, 0}};
  EXPECT_EQ(largest_gap(series), sim::seconds(6));
  EXPECT_EQ(largest_gap({}), 0);
}

TEST(TextTable, RendersAlignedColumnsAndCsv) {
  TextTable t({"op", "count"});
  t.add_row({"read", "123"});
  t.add_row({"write", "7"});
  const std::string s = t.render();
  EXPECT_NE(s.find("op"), std::string::npos);
  EXPECT_NE(s.find("read"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
  const std::string csv = t.render_csv();
  EXPECT_NE(csv.find("op,count"), std::string::npos);
  EXPECT_NE(csv.find("write,7"), std::string::npos);
}

TEST(TextTable, RowArityMismatchAsserts) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), sim::AssertionError);
}

TEST(Format, FixedAndBytes) {
  EXPECT_EQ(fmt_fixed(53.684, 2), "53.68");
  EXPECT_EQ(fmt_fixed(0.0, 2), "0.00");
  EXPECT_EQ(fmt_bytes(17), "17B");
  EXPECT_EQ(fmt_bytes(64 * 1024), "64KB");
  EXPECT_EQ(fmt_bytes(1536 * 1024), "1.5MB");
  EXPECT_EQ(fmt_bytes(3ull * 1024 * 1024 * 1024), "3.0GB");
}

TEST(Plots, ScatterRendersNonEmpty) {
  std::vector<TimelinePoint> series;
  for (int i = 0; i < 50; ++i) {
    series.push_back({sim::seconds(i), static_cast<std::uint64_t>(1) << (i % 16), 1, 0});
  }
  PlotOptions opts;
  opts.log_y = true;
  opts.title = "test";
  const std::string plot = render_scatter(series, false, opts);
  EXPECT_NE(plot.find('*'), std::string::npos);
  EXPECT_NE(plot.find("test"), std::string::npos);
}

TEST(Plots, ScatterHandlesEmptySeries) {
  PlotOptions opts;
  opts.title = "empty";
  EXPECT_NE(render_scatter({}, false, opts).find("empty"), std::string::npos);
}

TEST(Plots, CdfRendersBothCurves) {
  SizeCdf cdf({64, 64, 64, 1 << 20});
  PlotOptions opts;
  opts.log_x = true;
  const std::string plot = render_cdf(cdf, opts);
  EXPECT_NE(plot.find('o'), std::string::npos);
  EXPECT_NE(plot.find('#'), std::string::npos);
}

TEST(Csv, CdfAndTimelineExportHeaderPlusRows) {
  SizeCdf cdf({10, 20});
  const std::string c = cdf_csv(cdf);
  EXPECT_NE(c.find("size_bytes,op_fraction,byte_fraction"), std::string::npos);
  EXPECT_NE(c.find("\n10,"), std::string::npos);

  std::vector<TimelinePoint> series{{sim::seconds(1), 42, sim::milliseconds(5), 3}};
  const std::string t = timeline_csv(series);
  EXPECT_NE(t.find("t_seconds,bytes,duration_seconds,node"), std::string::npos);
  EXPECT_NE(t.find("1.000000,42,0.005000,3"), std::string::npos);
}

}  // namespace
}  // namespace sio::pablo
