// Tests for the collective Group: rendezvous semantics, last-arriver hooks,
// wave-offset publication, reusability, and membership queries.

#include <gtest/gtest.h>

#include "pfs/file.hpp"
#include "pfs/group.hpp"

namespace sio::pfs {
namespace {

sim::Task<void> arriver(sim::Engine& e, Group& g, sim::Tick delay, std::vector<sim::Tick>* out) {
  co_await e.delay(delay);
  co_await g.arrive();
  out->push_back(e.now());
}

TEST(Group, ArriveReleasesWhenAllPresent) {
  sim::Engine e;
  auto g = Group::contiguous(e, 3);
  std::vector<sim::Tick> released;
  e.spawn(arriver(e, *g, sim::seconds(1), &released));
  e.spawn(arriver(e, *g, sim::seconds(9), &released));
  e.spawn(arriver(e, *g, sim::seconds(4), &released));
  e.run();
  ASSERT_EQ(released.size(), 3u);
  for (auto t : released) EXPECT_EQ(t, sim::seconds(9));
}

sim::Task<void> hooked_arriver(sim::Engine& e, Group& g, sim::Tick delay, int* hook_runs) {
  co_await e.delay(delay);
  co_await g.arrive([hook_runs] { ++*hook_runs; });
}

TEST(Group, HookRunsExactlyOncePerWave) {
  sim::Engine e;
  auto g = Group::contiguous(e, 4);
  int hook_runs = 0;
  for (int i = 0; i < 4; ++i) {
    e.spawn(hooked_arriver(e, *g, sim::seconds(i), &hook_runs));
  }
  e.run();
  EXPECT_EQ(hook_runs, 1);
}

sim::Task<void> wave_user(sim::Engine& e, Group& g, int rank, FileState* f,
                          std::vector<std::uint64_t>* offsets) {
  co_await e.delay(sim::seconds(rank + 1));
  g.scratch()[static_cast<std::size_t>(rank)] = static_cast<std::uint64_t>((rank + 1) * 10);
  Group* gp = &g;
  co_await g.arrive([gp, f] {
    std::uint64_t acc = f->shared_offset;
    for (std::size_t r = 0; r < gp->wave_offsets().size(); ++r) {
      gp->wave_offsets()[r] = acc;
      acc += gp->scratch()[r];
    }
    f->shared_offset = acc;
  });
  offsets->push_back(g.wave_offsets()[static_cast<std::size_t>(rank)]);
}

TEST(Group, WaveOffsetsArePrefixSumsAndRaceFree) {
  sim::Engine e;
  auto g = Group::contiguous(e, 3);
  FileState f(0, "x", ContentPolicy::kExtentsOnly);
  std::vector<std::uint64_t> offsets;
  std::vector<std::unique_ptr<std::vector<std::uint64_t>>> keep;
  for (int r = 0; r < 3; ++r) {
    e.spawn(wave_user(e, *g, r, &f, &offsets));
  }
  e.run();
  std::sort(offsets.begin(), offsets.end());
  EXPECT_EQ(offsets, (std::vector<std::uint64_t>{0, 10, 30}));
  EXPECT_EQ(f.shared_offset, 60u);
}

sim::Task<void> repeat_arriver(sim::Engine& e, Group& g, int rounds, sim::Tick step, int* done) {
  for (int i = 0; i < rounds; ++i) {
    co_await e.delay(step);
    co_await g.arrive();
  }
  ++*done;
}

TEST(Group, IsReusableAcrossManyWaves) {
  sim::Engine e;
  auto g = Group::contiguous(e, 2);
  int done = 0;
  e.spawn(repeat_arriver(e, *g, 50, sim::seconds(1), &done));
  e.spawn(repeat_arriver(e, *g, 50, sim::seconds(2), &done));
  e.run();
  EXPECT_EQ(done, 2);
  EXPECT_EQ(e.now(), sim::seconds(100));  // paced by the slower member
}

TEST(Group, MembershipQueries) {
  sim::Engine e;
  Group g(e, {4, 9, 2});
  EXPECT_EQ(g.size(), 3);
  EXPECT_EQ(g.leader(), 4);
  EXPECT_EQ(g.rank_of(4), 0);
  EXPECT_EQ(g.rank_of(9), 1);
  EXPECT_EQ(g.rank_of(2), 2);
  EXPECT_TRUE(g.contains(9));
  EXPECT_FALSE(g.contains(7));
  EXPECT_THROW(g.rank_of(7), sim::AssertionError);
}

TEST(Group, SingleMemberGroupNeverBlocks) {
  sim::Engine e;
  auto g = Group::contiguous(e, 1);
  int hook_runs = 0;
  e.spawn(hooked_arriver(e, *g, sim::seconds(1), &hook_runs));
  e.run();
  EXPECT_EQ(hook_runs, 1);
  EXPECT_EQ(e.now(), sim::seconds(1));
}

}  // namespace
}  // namespace sio::pfs
