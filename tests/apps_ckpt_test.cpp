// Tests for the checkpoint/restart workload family and its role as the
// crash-consistency anchor: workload shape (naive vs aggregated), the
// journal ablation on one seeded torn-crash plan (off loses acked bytes,
// meta detects, full repairs), and two-run bit-identical determinism for the
// crash-during-recovery configuration.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/experiment.hpp"

namespace sio::core {
namespace {

apps::ckpt::Config tiny(apps::ckpt::Variant v) {
  apps::ckpt::Workload w;
  w.nodes = 8;
  w.steps = 20;
  w.checkpoint_every = 10;
  w.state_per_node = 64 * 1024;
  return apps::ckpt::make_config(v, w);
}

std::uint64_t write_bytes(const RunResult& r) {
  std::uint64_t sum = 0;
  for (const auto& ev : r.events) {
    if (ev.op == pablo::IoOp::kWrite) sum += ev.bytes;
  }
  return sum;
}

std::size_t count_op(const RunResult& r, pablo::IoOp op) {
  std::size_t n = 0;
  for (const auto& ev : r.events) {
    if (ev.op == op) ++n;
  }
  return n;
}

TEST(CkptApp, NaiveAndAggregatedMoveTheSameBytesInDifferentOps) {
  const auto naive = run_ckpt(tiny(apps::ckpt::Variant::kNaive), 21);
  const auto agg = run_ckpt(tiny(apps::ckpt::Variant::kAggregated), 21);
  // Same checkpoint payload either way: epochs * nodes * state_per_node.
  EXPECT_EQ(write_bytes(naive), 2u * 8 * 64 * 1024);
  EXPECT_EQ(write_bytes(naive), write_bytes(agg));
  // The naive variant pays for it in 1 KB requests, the aggregated one in
  // stripe-unit slabs — a 64x op-count gap.
  EXPECT_EQ(count_op(naive, pablo::IoOp::kWrite), 64u * count_op(agg, pablo::IoOp::kWrite));
  // Both end in the restart read-storm re-reading the newest checkpoint.
  EXPECT_EQ(write_bytes(naive), 2u * [&] {
    std::uint64_t sum = 0;
    for (const auto& ev : naive.events) {
      if (ev.op == pablo::IoOp::kRead) sum += ev.bytes;
    }
    return sum;
  }());
  ASSERT_FALSE(naive.phases.empty());
  EXPECT_EQ(naive.phases.back().name, "restart");
}

TEST(CkptApp, EpochFilesAreFreshPerCheckpoint) {
  const auto r = run_ckpt(tiny(apps::ckpt::Variant::kAggregated), 21);
  // One file per epoch, so a lost unit in epoch 1 can never be masked by
  // epoch 2 overwriting the same offsets.
  std::size_t ckpt_files = 0;
  for (const auto& name : r.file_names) {
    if (name.find("ckpt") != std::string::npos) ++ckpt_files;
  }
  EXPECT_EQ(ckpt_files, 2u);
}

// ------------------------------------------------ journal ablation matrix ---
//
// One seeded plan (two torn io-node crashes, the second landing mid recovery
// when journaling is on) through all three journal modes.  These pin the
// ISSUE's acceptance claim: with journal=full the scrub proves zero
// acked-bytes-lost and zero torn units on the exact seed where journal=off
// demonstrably loses data.

constexpr std::uint64_t kSeed = 510;

RunResult run_torn(apps::ckpt::Variant v, pfs::JournalMode mode) {
  fault::FaultPlan plan = fault::FaultPlan::io_node_crash_torn(kSeed);
  plan.journal = mode;
  return run_ckpt(apps::ckpt::make_config(v), plan, kSeed);
}

TEST(CkptJournalAblation, OffLosesAckedBytesAndLeavesATornUnit) {
  const auto r = run_torn(apps::ckpt::Variant::kAggregated, pfs::JournalMode::kOff);
  EXPECT_EQ(r.scrub.journal_mode, "off");
  EXPECT_EQ(r.resilience.server_crashes, 2u);
  EXPECT_GT(r.scrub.acked_bytes_lost, 0u);
  EXPECT_GT(r.scrub.lost_units, 0u);
  EXPECT_GE(r.scrub.torn_units, 1u);
  EXPECT_FALSE(r.loss_events.empty());
  EXPECT_EQ(r.scrub.journal_appends, 0u);
}

TEST(CkptJournalAblation, MetaDetectsEveryLossButRepairsNothing) {
  const auto r = run_torn(apps::ckpt::Variant::kAggregated, pfs::JournalMode::kMeta);
  EXPECT_EQ(r.scrub.journal_mode, "meta");
  EXPECT_GT(r.scrub.acked_bytes_lost, 0u);
  EXPECT_EQ(r.scrub.journal_redone, 0u);
  // Detect-only: every lost unit has a matching journal intent record.
  EXPECT_GE(r.scrub.journal_detected_lost, r.scrub.lost_units);
  EXPECT_GE(r.scrub.recoveries, 1u);
}

TEST(CkptJournalAblation, FullRepairsEverythingOnTheLossySeed) {
  const auto r = run_torn(apps::ckpt::Variant::kAggregated, pfs::JournalMode::kFull);
  EXPECT_EQ(r.scrub.journal_mode, "full");
  EXPECT_EQ(r.resilience.server_crashes, 2u);  // second crash lands mid recovery
  EXPECT_EQ(r.scrub.acked_bytes_lost, 0u);
  EXPECT_EQ(r.scrub.lost_units, 0u);
  EXPECT_EQ(r.scrub.torn_units, 0u);
  EXPECT_EQ(r.scrub.checksum_mismatches, 0u);
  EXPECT_GT(r.scrub.journal_redone, 0u);
  EXPECT_GE(r.scrub.recoveries, 1u);
}

/// Serializes every crash-consistency observable so a byte-compare catches
/// nondeterminism anywhere in the crash/recovery path.
std::string fingerprint(const RunResult& r) {
  std::ostringstream out;
  out << r.label << " " << r.exec_time << " " << r.events_processed << "\n";
  for (const auto& ev : r.events) {
    out << ev.node << " " << static_cast<int>(ev.op) << " " << ev.start << "+" << ev.duration
        << " " << ev.bytes << "@" << ev.offset << "\n";
  }
  for (const auto& l : r.loss_events) {
    out << "loss " << l.at << " " << l.target << " " << l.file << " " << l.offset << " "
        << l.bytes << " " << l.torn << "\n";
  }
  const auto& s = r.scrub;
  out << s.journal_mode << " " << s.acked_bytes << " " << s.durable_bytes << " "
      << s.acked_bytes_lost << " " << s.torn_units << " " << s.journal_appends << " "
      << s.journal_bytes << " " << s.journal_redone << " " << s.journal_trimmed << " "
      << s.recoveries << "\n";
  return out.str();
}

TEST(CkptJournalAblation, CrashDuringRecoveryRunsAreBitIdentical) {
  const auto a = run_torn(apps::ckpt::Variant::kNaive, pfs::JournalMode::kFull);
  const auto b = run_torn(apps::ckpt::Variant::kNaive, pfs::JournalMode::kFull);
  EXPECT_EQ(fingerprint(a), fingerprint(b));
}

}  // namespace
}  // namespace sio::core
