// Churn regression tests for sim::CheckMap.
//
// The sanitizer table doubles at 3/4 load; before the shrink path was added,
// a burst of short-lived coroutines left the ballooned slot array pinned for
// the rest of the run.  These tests pin the contract: capacity follows
// occupancy down (1/8 threshold, halving to the 64-slot floor), survivors
// keep their payload across every rehash, and steady small churn never
// resizes at all.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/checkmap.hpp"

namespace sio::sim {
namespace {

// index_of() shifts frame addresses right by 4 before hashing, so synthetic
// keys must differ above bit 4 to be distinct to the table.
void* key_at(std::size_t i) {
  return reinterpret_cast<void*>(static_cast<std::uintptr_t>((i + 1) * 16));
}

TEST(CheckMapChurn, BalloonThenDrainReleasesCapacity) {
  CheckMap m;
  constexpr std::size_t kBurst = 10000;
  for (std::size_t i = 0; i < kBurst; ++i) {
    CheckMap::Entry& e = m.upsert(key_at(i));
    e.kind = "Mutex";
    e.pending = (i % 2) == 0;
  }
  ASSERT_EQ(m.size(), kBurst);
  const std::size_t ballooned = m.capacity();
  EXPECT_GE(ballooned, 16384u);  // 10000 entries past 3/4 of 8192

  // Drain all but a handful, as a wave of task completions would.
  constexpr std::size_t kSurvivors = 4;
  for (std::size_t i = kSurvivors; i < kBurst; ++i) m.erase(key_at(i));
  ASSERT_EQ(m.size(), kSurvivors);
  EXPECT_EQ(m.capacity(), 64u) << "ballooned table was not released";

  // Survivors kept their payload through every halving rehash.
  for (std::size_t i = 0; i < kSurvivors; ++i) {
    CheckMap::Entry* e = m.find(key_at(i));
    ASSERT_NE(e, nullptr);
    EXPECT_STREQ(e->kind, "Mutex");
    EXPECT_EQ(e->pending, (i % 2) == 0);
  }
}

TEST(CheckMapChurn, RepeatedBurstsDoNotAccumulateCapacity) {
  CheckMap m;
  for (int burst = 0; burst < 5; ++burst) {
    for (std::size_t i = 0; i < 2000; ++i) m.upsert(key_at(i));
    for (std::size_t i = 0; i < 2000; ++i) m.erase(key_at(i));
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.capacity(), 64u) << "burst " << burst << " left slots pinned";
  }
}

TEST(CheckMapChurn, SteadySmallChurnNeverResizes) {
  CheckMap m;
  for (std::size_t i = 0; i < 16; ++i) m.upsert(key_at(i));
  const std::size_t cap = m.capacity();
  EXPECT_EQ(cap, 64u);
  // 16 live entries with one-in-one-out churn sits between the shrink
  // threshold (8) and the grow threshold (48): no rehash may ever fire.
  for (std::size_t i = 16; i < 5000; ++i) {
    m.upsert(key_at(i));
    m.erase(key_at(i - 16));
    ASSERT_EQ(m.capacity(), cap) << "resize thrash at step " << i;
  }
  EXPECT_EQ(m.size(), 16u);
}

TEST(CheckMapChurn, ShrinkGrowHysteresisNoThrash) {
  CheckMap m;
  // Grow once to 128 (past 48 = 3/4 of 64).
  for (std::size_t i = 0; i < 49; ++i) m.upsert(key_at(i));
  ASSERT_EQ(m.capacity(), 128u);
  // Hover exactly around the 1/8 shrink threshold of the 128-slot table:
  // dropping to 16 shrinks to 64 (landing at 1/4 load), after which the
  // same 16 entries are far from 64's grow threshold — one resize total.
  for (std::size_t i = 16; i < 49; ++i) m.erase(key_at(i));
  ASSERT_EQ(m.size(), 16u);
  EXPECT_EQ(m.capacity(), 64u);
  for (int round = 0; round < 100; ++round) {
    m.upsert(key_at(100000 + static_cast<std::size_t>(round)));
    m.erase(key_at(100000 + static_cast<std::size_t>(round)));
    ASSERT_EQ(m.capacity(), 64u);
  }
}

TEST(CheckMapChurn, ClearReleasesBalloonedTable) {
  CheckMap m;
  for (std::size_t i = 0; i < 3000; ++i) m.upsert(key_at(i));
  ASSERT_GT(m.capacity(), 64u);
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.capacity(), 64u);
  // Table is fully usable after the release.
  CheckMap::Entry& e = m.upsert(key_at(7));
  e.name = "after-clear";
  ASSERT_NE(m.find(key_at(7)), nullptr);
  EXPECT_STREQ(m.find(key_at(7))->name, "after-clear");
}

TEST(CheckMapChurn, BackwardShiftDeletionSurvivesShrinkMidChain) {
  // Force clustered probe chains (keys colliding into nearby home slots via
  // dense sequential addresses), then delete through the cluster while the
  // shrink path fires underneath.
  CheckMap m;
  std::vector<void*> keys;
  for (std::size_t i = 0; i < 1000; ++i) keys.push_back(key_at(i));
  for (void* k : keys) {
    CheckMap::Entry& e = m.upsert(k);
    e.name = "probe";
  }
  // Delete evens, verify odds after every wave of 100.
  for (std::size_t start = 0; start < 1000; start += 200) {
    for (std::size_t i = start; i < start + 200 && i < 1000; i += 2) {
      m.erase(keys[i]);
    }
    for (std::size_t i = 1; i < 1000; i += 2) {
      CheckMap::Entry* e = m.find(keys[i]);
      ASSERT_NE(e, nullptr) << "odd key " << i << " lost after wave " << start;
      EXPECT_STREQ(e->name, "probe");
    }
  }
  EXPECT_EQ(m.size(), 500u);
}

}  // namespace
}  // namespace sio::sim
