// ESCAT evolution walkthrough: runs the three tracked code versions of the
// electron-scattering application on the simulated Paragon and prints the
// comparative analysis the paper builds §4 around — execution times,
// per-operation I/O breakdowns, and what changed between versions.
//
//   ./build/examples/escat_evolution

#include <cstdio>

#include "core/sio.hpp"

int main() {
  using namespace sio;

  std::printf("ESCAT (Schwinger multichannel electron scattering), ethylene data set,\n");
  std::printf("128 nodes of the simulated Caltech Paragon XP/S.\n\n");

  const auto study = core::run_escat_study();

  for (const core::RunResult* r : {&study.a, &study.b, &study.c}) {
    std::fputs(core::render_io_share_table(*r, "=== Version " + r->label + " ===").c_str(),
               stdout);
    std::fputs("\n", stdout);
  }

  std::printf("What changed:\n");
  std::printf(" A -> B: node zero reads + broadcasts the input files (read time down);\n");
  std::printf("         all nodes stage the quadrature via seek+write in M_UNIX\n");
  std::printf("         (seek time explodes); gopen replaces concurrent opens.\n");
  std::printf(" B -> C: phase-2 writes switch to M_ASYNC (OSF/1 R1.3) — seeks become\n");
  std::printf("         local pointer updates and serialization disappears.\n\n");

  const double red = 100.0 * (1.0 - study.c.exec_seconds() / study.a.exec_seconds());
  std::printf("Execution time: A=%.0fs  B=%.0fs  C=%.0fs  (%.1f%% total reduction)\n\n",
              study.a.exec_seconds(), study.b.exec_seconds(), study.c.exec_seconds(), red);

  // Functional classes (paper §2/§6): ESCAT's out-of-core quadrature traffic
  // is data staging, bracketed by the compulsory input/result phases.
  const auto classes = pablo::classify_phases(study.c.events, study.c.phases);
  std::printf("Functional I/O classes (version C, by bytes):\n");
  for (int i = 0; i < pablo::kIoClassCount; ++i) {
    const auto c = static_cast<pablo::IoClass>(i);
    std::printf("  %-13s %8llu ops  %s\n", std::string(pablo::io_class_name(c)).c_str(),
                static_cast<unsigned long long>(classes.of(c).ops),
                pablo::fmt_bytes(classes.of(c).bytes).c_str());
  }
  std::printf("\nPer-phase profile (version C):\n%s",
              pablo::render_phase_profiles(
                  pablo::phase_profiles(study.c.events, study.c.phases))
                  .c_str());
  return 0;
}
