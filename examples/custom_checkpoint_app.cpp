// Building your own workload on the public API: a checkpointing stencil
// application (the paper's third I/O class, alongside compulsory and data
// staging I/O).  Every node computes, and every K steps the application
// checkpoints its state — either naively (each node many small M_UNIX
// writes) or tuned (aggregated, stripe-aligned M_ASYNC writes), with and
// without the §7 file-system policies.  The Pablo layer then reports the
// burst structure and cost of each variant.
//
// The library version of this workload lives in `src/apps/ckpt.*` (per-epoch
// files, restart read-storm, journal-ablation hooks — see `bench_ckpt`);
// this example stays self-contained to show the raw API.
//
//   ./build/examples/custom_checkpoint_app

#include <cstdio>

#include "core/sio.hpp"

namespace {

using namespace sio;

constexpr int kNodes = 32;
constexpr int kSteps = 40;
constexpr int kCheckpointEvery = 10;
constexpr std::uint64_t kStatePerNode = 256 * 1024;

struct Variant {
  const char* name;
  bool tuned;              // aggregated stripe-aligned M_ASYNC vs tiny M_UNIX
  int prefetch_units;      // server policy for the restart read-back
};

sim::Task<void> app_node(hw::Machine& machine, pfs::Pfs& fs, pfs::Group& group,
                         apps::ComputeModel& compute, int node, bool tuned) {
  pfs::OpenOptions opts;
  opts.truncate = true;
  if (tuned) opts.mode = pfs::IoMode::kAsync;
  auto ckpt = co_await fs.gopen(node, "app/checkpoint", group, opts);
  const int rank = group.rank_of(node);

  for (int step = 1; step <= kSteps; ++step) {
    co_await compute.run(node, sim::milliseconds(800), 0.05);
    if (step % kCheckpointEvery != 0) continue;

    // Checkpoint: dump this node's state slab.
    const std::uint64_t base = static_cast<std::uint64_t>(rank) * kStatePerNode;
    if (tuned) {
      // Stripe-sized direct writes.
      co_await ckpt.seek(base);
      for (std::uint64_t off = 0; off < kStatePerNode; off += 64 * 1024) {
        co_await ckpt.write(64 * 1024);
      }
    } else {
      // The "natural" version: a few thousand small variable writes.
      co_await ckpt.seek(base);
      for (std::uint64_t off = 0; off < kStatePerNode; off += 1024) {
        co_await ckpt.write(1024);
      }
    }
  }
  co_await ckpt.close();

  // Restart read-back: every node re-reads its slab sequentially.
  auto rd = co_await fs.gopen(node, "app/checkpoint", group,
                              {.mode = pfs::IoMode::kAsync});
  co_await rd.seek(static_cast<std::uint64_t>(rank) * kStatePerNode);
  for (std::uint64_t off = 0; off < kStatePerNode; off += 64 * 1024) {
    co_await rd.read(64 * 1024);
  }
  co_await rd.close();
}

void run_variant(const Variant& v) {
  hw::Machine machine(hw::Machine::caltech_paragon(kNodes));
  pablo::Collector collector(machine.engine());
  pfs::Pfs fs(machine, collector,
              pfs::PfsConfig{pfs::with_prefetch(pfs::ServerConfig{}, v.prefetch_units),
                             pfs::ContentPolicy::kExtentsOnly});
  auto group = pfs::Group::contiguous(machine.engine(), kNodes);
  apps::ComputeModel compute(machine.engine(), 7, kNodes);

  machine.engine().spawn(
      apps::parallel_section(machine.engine(), kNodes, [&](int node) -> sim::Task<void> {
        co_await app_node(machine, fs, *group, compute, node, v.tuned);
      }));
  machine.engine().run();

  const pablo::AggregateBreakdown b(collector, machine.engine().now());
  const auto writes = pablo::timeline(collector, pablo::IoOp::kWrite);
  const auto bursts =
      pablo::count_bursts(pablo::burst_profile(writes, 0, machine.engine().now(), 48));
  std::printf("%-28s wall %7.2fs  io %7.2fs (%5.2f%%)  write-bursts %d\n", v.name,
              sim::to_seconds(machine.engine().now()), sim::to_seconds(b.total_io_time()),
              b.pct_io_of_exec(), bursts);
}

}  // namespace

int main() {
  std::printf("Checkpointing stencil app, %d nodes, %d steps, checkpoint every %d:\n\n",
              kNodes, kSteps, kCheckpointEvery);
  run_variant({"naive (1KB M_UNIX writes)", false, 0});
  run_variant({"tuned (64KB M_ASYNC writes)", true, 0});
  run_variant({"tuned + server prefetch", true, 2});
  std::printf(
      "\nThe checkpoint bursts mirror PRISM's Figure 9; the naive/tuned gap is the\n"
      "hand-aggregation the paper argues the file system should do for you.\n");
  return 0;
}
