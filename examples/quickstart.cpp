// Quickstart: build a simulated Paragon, drive the PFS from coroutine tasks
// in two different access modes, and print the Pablo-style analysis.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/sio.hpp"

namespace {

using namespace sio;

// Every node appends `writes` chunks to a shared file under the given mode,
// then the group reloads the file with 128 KB records.
sim::Task<void> node_task(hw::Machine& machine, pfs::Pfs& fs, pfs::Group& group, int node,
                          pfs::IoMode write_mode) {
  constexpr std::uint64_t kChunk = 2048;
  constexpr int kWrites = 32;
  const int rank = group.rank_of(node);

  auto fh = co_await fs.gopen(node, "demo/data", group, {.truncate = true});
  if (write_mode != pfs::IoMode::kUnix) co_await fh.set_iomode(write_mode);
  for (int i = 0; i < kWrites; ++i) {
    const std::uint64_t offset =
        (static_cast<std::uint64_t>(i) * static_cast<std::uint64_t>(group.size()) +
         static_cast<std::uint64_t>(rank)) *
        kChunk;
    co_await fh.seek(offset);
    co_await fh.write(kChunk);
  }
  co_await fh.close();

  // Reload collectively in stripe-sized records (the access pattern the
  // tuned ESCAT code converged on).
  auto rd = co_await fs.gopen(node, "demo/data", group,
                              {.mode = pfs::IoMode::kRecord, .record_size = 128 * 1024});
  const std::uint64_t total = kChunk * static_cast<std::uint64_t>(kWrites) *
                              static_cast<std::uint64_t>(group.size());
  const int waves =
      static_cast<int>(total / (static_cast<std::uint64_t>(group.size()) * 128 * 1024));
  for (int wv = 0; wv < waves; ++wv) {
    co_await rd.read(128 * 1024);
  }
  co_await rd.close();
  (void)machine;
}

double run_with_mode(pfs::IoMode mode) {
  hw::Machine machine(hw::Machine::caltech_paragon(/*compute_nodes=*/32));
  pablo::Collector collector(machine.engine());
  pfs::Pfs fs(machine, collector);
  auto group = pfs::Group::contiguous(machine.engine(), 32);

  machine.engine().spawn(apps::parallel_section(
      machine.engine(), 32, [&](int node) -> sim::Task<void> {
        co_await node_task(machine, fs, *group, node, mode);
      }));
  machine.engine().run();

  // Pablo-style analysis: per-operation breakdown over the whole trace.
  pablo::AggregateBreakdown breakdown(collector, machine.engine().now());
  std::printf("mode %-8s  wall %7.3fs  io %7.3fs  dominant op: %s\n",
              std::string(pfs::io_mode_name(mode)).c_str(),
              sim::to_seconds(machine.engine().now()),
              sim::to_seconds(breakdown.total_io_time()),
              std::string(pablo::io_op_name(breakdown.dominant_op())).c_str());
  return sim::to_seconds(breakdown.total_io_time());
}

}  // namespace

int main() {
  std::printf("Quickstart: 32 nodes write a shared file, then reload it via M_RECORD.\n");
  std::printf("Same application pattern, two write modes (the paper's central lesson):\n\n");
  const double unix_io = run_with_mode(pfs::IoMode::kUnix);
  const double async_io = run_with_mode(pfs::IoMode::kAsync);
  std::printf("\nM_UNIX/M_ASYNC I/O-time ratio: %.1fx\n", unix_io / async_io);
  return 0;
}
