// Mode explorer: the "comprehensive set of parallel file system I/O
// benchmarks" the paper's §7 proposes deriving from its characterizations.
// Sweeps every PFS access mode across request sizes with a fixed node count
// and prints the achieved aggregate transfer rate — making the mode/request
// interaction (stripe-aligned M_RECORD fast, shared M_UNIX serialized slow)
// directly visible.
//
//   ./build/examples/mode_explorer

#include <cstdio>
#include <vector>

#include "core/sio.hpp"

namespace {

using namespace sio;

constexpr int kNodes = 32;
constexpr std::uint64_t kBytesPerNode = 1 << 20;  // 1 MB each, 32 MB total

// Each node writes its share of a file, in `request`-sized chunks, using the
// given mode; returns the aggregate MB/s achieved.
double sweep_case(pfs::IoMode mode, std::uint64_t request) {
  hw::Machine machine(hw::Machine::caltech_paragon(kNodes));
  pablo::Collector collector(machine.engine());
  pfs::Pfs fs(machine, collector);
  auto group = pfs::Group::contiguous(machine.engine(), kNodes);

  machine.engine().spawn(apps::parallel_section(
      machine.engine(), kNodes, [&](int node) -> sim::Task<void> {
        pfs::OpenOptions opts;
        opts.mode = mode;
        opts.truncate = true;
        if (mode == pfs::IoMode::kRecord) opts.record_size = request;
        auto fh = co_await fs.gopen(node, "x/sweep", *group, opts);

        const int requests = static_cast<int>(kBytesPerNode / request);
        const int rank = group->rank_of(node);
        for (int i = 0; i < requests; ++i) {
          switch (mode) {
            case pfs::IoMode::kUnix:
            case pfs::IoMode::kAsync: {
              // Disjoint per-node regions, strided like the ESCAT staging.
              const std::uint64_t off =
                  (static_cast<std::uint64_t>(i) * kNodes + static_cast<std::uint64_t>(rank)) *
                  request;
              co_await fh.seek(off);
              co_await fh.write(request);
              break;
            }
            default:
              co_await fh.write(request);
              break;
          }
        }
        co_await fh.close();
      }));
  machine.engine().run();

  const double secs = sim::to_seconds(machine.engine().now());
  const double mb = static_cast<double>(kBytesPerNode) * kNodes / (1024.0 * 1024.0);
  return mb / secs;
}

}  // namespace

int main() {
  std::printf("PFS access-mode / request-size sweep: %d nodes write 1 MB each\n", kNodes);
  std::printf("(aggregate MB/s; higher is better)\n\n");

  const std::vector<std::uint64_t> sizes = {512, 2048, 8192, 65536, 131072};
  const std::vector<pfs::IoMode> modes = {pfs::IoMode::kUnix, pfs::IoMode::kRecord,
                                          pfs::IoMode::kAsync, pfs::IoMode::kSync,
                                          pfs::IoMode::kLog};

  pablo::TextTable t({"mode", "512B", "2KB", "8KB", "64KB", "128KB"});
  for (const auto mode : modes) {
    std::vector<std::string> row{std::string(pfs::io_mode_name(mode))};
    for (const auto size : sizes) {
      row.push_back(pablo::fmt_fixed(sweep_case(mode, size), 1));
    }
    t.add_row(std::move(row));
  }
  std::fputs(t.render().c_str(), stdout);
  std::printf(
      "\nReadings: M_UNIX serializes on the shared-file token; M_RECORD/M_ASYNC\n"
      "parallelize, and stripe-multiple requests (64KB+) engage every array —\n"
      "exactly why the tuned applications settled on 128KB records.\n");
  return 0;
}
