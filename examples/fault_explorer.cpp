// Fault explorer: run a paper workload under a fault plan and inspect what
// the injections did — the fault/recovery timeline, the per-phase resilience
// table, and the I/O time added over the fault-free baseline.
//
//   ./build/examples/fault_explorer [app] [plan] [seed]
//
//     app   escat | prism                                   (default escat)
//     plan  disk-degraded | io-node-crash | slow-link | random
//                                                           (default disk-degraded)
//     seed  any integer, feeds both the plan and the run    (default 42)
//
// Everything is deterministic: the same (app, plan, seed) triple reproduces
// every line of output, including the fault timeline.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/sio.hpp"

namespace {

using namespace sio;

fault::FaultPlan make_plan(const std::string& name, std::uint64_t seed) {
  if (name == "disk-degraded") return fault::FaultPlan::disk_degraded(seed);
  if (name == "io-node-crash") return fault::FaultPlan::io_node_crash(seed);
  if (name == "slow-link") return fault::FaultPlan::slow_link(seed);
  if (name == "random")
    return fault::FaultPlan::random_plan(seed, sim::seconds(30), /*io_nodes=*/16);
  std::fprintf(stderr, "unknown plan '%s' (want disk-degraded | io-node-crash | slow-link | random)\n",
               name.c_str());
  std::exit(2);
}

void print_timeline(const core::RunResult& r) {
  std::printf("fault/recovery timeline (%zu records):\n", r.fault_events.size());
  for (const auto& f : r.fault_events) {
    const std::string kind(pablo::fault_kind_name(f.kind));
    std::printf("  t=%9.3f s  %-16s target=%-3d info=%llu\n", sim::to_seconds(f.at), kind.c_str(),
                f.target, static_cast<unsigned long long>(f.info));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string app = argc > 1 ? argv[1] : "escat";
  const std::string plan_name = argc > 2 ? argv[2] : "disk-degraded";
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 42;

  const auto plan = make_plan(plan_name, seed);
  std::printf("app=%s plan=%s seed=%llu (%zu injection(s) scheduled)\n\n", app.c_str(),
              plan.name.c_str(), static_cast<unsigned long long>(seed),
              static_cast<std::size_t>(plan.injection_count()));

  core::RunResult baseline, faulted;
  if (app == "escat") {
    auto cfg = apps::escat::make_config(apps::escat::Version::C);
    baseline = core::run_escat(cfg, seed);
    faulted = core::run_escat(std::move(cfg), plan, seed);
  } else if (app == "prism") {
    auto cfg = apps::prism::make_config(apps::prism::Version::C);
    baseline = core::run_prism(cfg, seed);
    faulted = core::run_prism(std::move(cfg), plan, seed);
  } else {
    std::fprintf(stderr, "unknown app '%s' (want escat | prism)\n", app.c_str());
    return 2;
  }

  print_timeline(faulted);
  std::printf("\n%s", core::render_resilience_summary(faulted, baseline).c_str());
  return 0;
}
