// PRISM evolution walkthrough: runs the three tracked versions of the
// spectral-element Navier-Stokes code (64 nodes) and prints the §5 analysis,
// including the famous version-C lesson: disabling system I/O buffering
// turned a handful of sub-40-byte header reads into the dominant I/O cost.
//
//   ./build/examples/prism_evolution

#include <cstdio>

#include "core/sio.hpp"

int main() {
  using namespace sio;

  std::printf("PRISM (3-D Navier-Stokes, spectral elements), 201-element cylinder flow,\n");
  std::printf("Re=1000, 1250 steps, checkpoint every 250; 64 nodes.\n\n");

  const auto study = core::run_prism_study();

  for (const core::RunResult* r : {&study.a, &study.b, &study.c}) {
    std::fputs(core::render_io_share_table(*r, "=== Version " + r->label + " ===").c_str(),
               stdout);
    const auto& p1 = r->phase("phase1");
    std::printf("phase-1 (compulsory read) window: %.0fs\n\n", sim::to_seconds(p1.span()));
  }

  // Miller & Katz functional classes (paper §2/§6): PRISM's middle phase is
  // checkpoint I/O; the compulsory reads/writes bracket the run.
  const auto classes = pablo::classify_phases(study.c.events, study.c.phases);
  std::printf("Functional I/O classes (version C, by bytes):\n");
  for (int i = 0; i < pablo::kIoClassCount; ++i) {
    const auto c = static_cast<pablo::IoClass>(i);
    std::printf("  %-13s %8llu ops  %s\n", std::string(pablo::io_class_name(c)).c_str(),
                static_cast<unsigned long long>(classes.of(c).ops),
                pablo::fmt_bytes(classes.of(c).bytes).c_str());
  }
  std::printf("\nPer-phase profile (version C) — the paper's §6 dimensions:\n%s\n",
              pablo::render_phase_profiles(
                  pablo::phase_profiles(study.c.events, study.c.phases))
                  .c_str());

  std::printf("What changed:\n");
  std::printf(" A -> B: setiomode switches the input files to M_GLOBAL / M_RECORD —\n");
  std::printf("         reads collapse into single shared transfers; the field file is\n");
  std::printf("         written concurrently in M_ASYNC (write time rises).\n");
  std::printf(" B -> C: gopen replaces open+setiomode (open time collapses); binary\n");
  std::printf("         connectivity parsing removes most small reads; BUT buffering is\n");
  std::printf("         disabled on the restart file, so each tiny header read becomes a\n");
  std::printf("         raw RAID-3 granule access — read time jumps to ~%.0f%% of all I/O.\n",
              study.c.breakdown().pct_of_io_time(pablo::IoOp::kRead));

  const double red = 100.0 * (1.0 - study.c.exec_seconds() / study.a.exec_seconds());
  std::printf("\nExecution time: A=%.0fs  B=%.0fs  C=%.0fs  (%.1f%% total reduction)\n",
              study.a.exec_seconds(), study.b.exec_seconds(), study.c.exec_seconds(), red);
  return 0;
}
