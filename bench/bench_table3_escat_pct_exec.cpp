// Reproduces paper Table 3: percentage of total execution time by I/O
// operation type for ESCAT — ethylene versions A/B/C on 128 nodes plus the
// carbon-monoxide dataset (13 collision channels) on 256 nodes, where I/O
// grows to ~20% of execution time.

#include <cstdio>

#include "core/figures.hpp"

int main() {
  const auto study = sio::core::run_escat_study();
  const auto co = sio::core::run_escat_carbon_monoxide();
  std::fputs(sio::core::render_table3(study, co).c_str(), stdout);
  std::fputs("\n", stdout);
  std::fputs(sio::core::render_io_share_table(co, "Detail: carbon monoxide (version C)").c_str(),
             stdout);
  return 0;
}
