// Reproduces paper Table 5: aggregate I/O performance summaries for PRISM —
// the percentage of total I/O time per operation type for versions A/B/C,
// including version C's read blow-up after system buffering was disabled.

#include <cstdio>

#include "core/figures.hpp"

int main() {
  const auto study = sio::core::run_prism_study();
  std::fputs(sio::core::render_table5(study).c_str(), stdout);
  std::fputs("\n", stdout);
  std::fputs(sio::core::render_io_share_table(study.a, "Detail: version A").c_str(), stdout);
  std::fputs(sio::core::render_io_share_table(study.b, "Detail: version B").c_str(), stdout);
  std::fputs(sio::core::render_io_share_table(study.c, "Detail: version C").c_str(), stdout);
  return 0;
}
