// Checkpoint/restart bench: the ckpt workload family (naive 1 KB strided
// writes vs aggregated 64 KB slabs) through the write-ahead-journaling
// ablation matrix.
//
//   fault-free            no injections, journaling off (the baseline)
//   fault-free-journal    no injections, journal=full (pure logging overhead)
//   crash-torn-off        double torn io-node crash, journaling off
//   crash-torn-meta       same crashes, journal=meta (detect-only)
//   crash-torn-full       same crashes, journal=full (redo recovery)
//
// For every cell the bench prints the resilience report (which embeds the
// post-run scrub: acked-but-lost bytes, torn units, journal redo counts) and
// appends a machine-readable record to `bench_ckpt.json` (path overridable
// as argv[1]) for CI archival and gating.
//
// Everything is seeded: rerunning this binary reproduces every number.

#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "core/sio.hpp"

namespace {

using namespace sio;

struct Cell {
  std::string app;
  std::string plan;
  core::RunResult run;
};

/// Served data operations per simulated second — the same goodput metric the
/// resilience bench gates on, here across the journaling ablation arms.
double goodput_ops_per_s(const core::RunResult& run) {
  std::uint64_t served = 0;
  for (const auto& ev : run.events) {
    if (ev.op == pablo::IoOp::kRead || ev.op == pablo::IoOp::kWrite) ++served;
  }
  const double secs = sim::to_seconds(run.exec_time);
  return secs > 0 ? static_cast<double>(served) / secs : 0.0;
}

void append_json(std::string& out, const Cell& c, const core::RunResult& baseline) {
  const auto& sc = c.run.scrub;
  out += "  {\"app\": \"" + c.app + "\", \"plan\": \"" + c.plan + "\"";
  out += ", \"goodput_ops_per_s\": " + pablo::fmt_fixed(goodput_ops_per_s(c.run), 3);
  out += ", \"exec_time_s\": " + pablo::fmt_fixed(sim::to_seconds(c.run.exec_time), 6);
  out += ", \"io_time_s\": " + pablo::fmt_fixed(sim::to_seconds(c.run.io_time()), 6);
  out += ", \"baseline_exec_time_s\": " +
         pablo::fmt_fixed(sim::to_seconds(baseline.exec_time), 6);
  out += ", \"journal\": \"" + sc.journal_mode + "\"";
  out += ", \"server_crashes\": " + std::to_string(c.run.resilience.server_crashes);
  out += ", \"loss_events\": " + std::to_string(c.run.loss_events.size());
  out += ", \"acked_bytes_lost\": " + std::to_string(sc.acked_bytes_lost);
  out += ", \"lost_units\": " + std::to_string(sc.lost_units);
  out += ", \"torn_units\": " + std::to_string(sc.torn_units);
  out += ", \"journal_appends\": " + std::to_string(sc.journal_appends);
  out += ", \"journal_redone\": " + std::to_string(sc.journal_redone);
  out += ", \"journal_detected_lost\": " + std::to_string(sc.journal_detected_lost);
  out += ", \"recoveries\": " + std::to_string(sc.recoveries);
  out += "}";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "bench_ckpt.json";
  constexpr std::uint64_t kSeed = 510;

  struct PlanRow {
    const char* name;
    bool faults;
    pfs::JournalMode journal;
  };
  const std::vector<PlanRow> plans = {
      {"fault-free", false, pfs::JournalMode::kOff},
      {"fault-free-journal", false, pfs::JournalMode::kFull},
      {"crash-torn-off", true, pfs::JournalMode::kOff},
      {"crash-torn-meta", true, pfs::JournalMode::kMeta},
      {"crash-torn-full", true, pfs::JournalMode::kFull},
  };
  const auto make_plan = [&](const PlanRow& row) {
    fault::FaultPlan plan =
        row.faults ? fault::FaultPlan::io_node_crash_torn(kSeed) : fault::FaultPlan::fault_free();
    plan.journal = row.journal;
    return plan;
  };

  // All ten cells (2 variants x 5 plans) are independent seeded runs: fan
  // them out, then render serially in the fixed cell order so stdout and the
  // JSON are identical to the serial version.
  std::vector<std::function<core::RunResult()>> jobs;
  for (const auto variant : {apps::ckpt::Variant::kNaive, apps::ckpt::Variant::kAggregated}) {
    for (const auto& row : plans) {
      jobs.push_back([variant, plan = make_plan(row)] {
        return core::run_ckpt(apps::ckpt::make_config(variant), plan, kSeed);
      });
    }
  }
  const auto results = core::ParallelRunner().run<core::RunResult>(jobs);

  std::string json = "[\n";
  bool first = true;

  std::printf("Checkpoint/restart: naive vs aggregated through the journaling ablation\n\n");

  std::size_t idx = 0;
  for (const auto variant : {apps::ckpt::Variant::kNaive, apps::ckpt::Variant::kAggregated}) {
    const std::string app = "ckpt-" + std::string(apps::ckpt::variant_name(variant));
    const auto& baseline = results[idx];  // fault-free journaling-off cell
    for (const auto& row : plans) {
      Cell c;
      c.app = app;
      c.plan = row.name;
      c.run = results[idx++];
      std::printf("==== %s / %s ====\n", c.app.c_str(), c.plan.c_str());
      std::fputs(core::render_resilience_summary(c.run, baseline).c_str(), stdout);
      std::printf("\n");
      if (!first) json += ",\n";
      first = false;
      append_json(json, c, baseline);
    }
  }
  json += "\n]\n";

  std::ofstream f(json_path);
  f << json;
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
