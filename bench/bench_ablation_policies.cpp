// Ablation bench for the paper's §7 file-system design principles.
//
// The paper closes by arguing that request aggregation, prefetching and
// write-behind belong in the file system, so applications would not need the
// hand-tuning the ESCAT/PRISM teams performed.  This bench quantifies each
// policy on a version-A-style request stream (many small sequential
// requests) and compares against the hand-tuned version-C-style stream
// (stripe-aligned large requests):
//
//   row 1  naive stream, vanilla PFS            (the version-A situation)
//   row 2  naive stream + client aggregation    (library does the batching)
//   row 3  naive stream + server prefetch       (reload accelerated)
//   row 4  naive stream + both
//   row 5  naive stream, write-through servers  (write-behind disabled)
//   row 6  hand-tuned stream, vanilla PFS       (the version-C situation)

#include <cstdio>
#include <string>

#include "core/sio.hpp"

namespace {

using namespace sio;

constexpr int kNodes = 16;
constexpr std::uint64_t kTotal = 8ull << 20;  // 8 MB staged then reloaded
constexpr std::uint64_t kSmall = 2048;
constexpr std::uint64_t kLarge = 128 * 1024;

struct Setup {
  const char* name;
  bool aggregate;
  int prefetch;
  bool write_through;
  bool tuned_stream;
};

sim::Task<void> stage_and_reload(pfs::Pfs& fs, const Setup& s) {
  auto& file = fs.stage_file("a/data", 0);

  // --- staging (writes from node 0, like ESCAT version A's coordinator) ---
  const std::uint64_t chunk = s.tuned_stream ? kLarge : kSmall;
  if (s.aggregate) {
    pfs::RequestAggregator agg(fs, file, 0);
    for (std::uint64_t off = 0; off < kTotal; off += chunk) {
      co_await agg.submit(off, chunk);
    }
    co_await agg.drain();
  } else {
    for (std::uint64_t off = 0; off < kTotal; off += chunk) {
      co_await fs.transfer(0, file, off, chunk, /*is_write=*/true, /*buffered=*/true);
    }
  }

  // --- reload (sequential whole-file scan, like the quadrature re-read) ---
  const std::uint64_t units = kTotal / fs.layout().unit();
  for (std::uint64_t u = 0; u < units; ++u) {
    co_await fs.fetch_unit(0, file, u);
  }

  // --- cold compulsory reads: every node scans its own staged input file
  // concurrently (a phase-one pattern).  The arrays' heads thrash between
  // the per-node extents; sequential prefetch amortizes that positioning ---
  std::vector<pfs::FileState*> inputs;
  for (int n = 0; n < kNodes; ++n) {
    inputs.push_back(&fs.stage_file("a/input" + std::to_string(n), kTotal));
  }
  co_await apps::parallel_section(
      fs.machine().engine(), kNodes, [&fs, &inputs](int node) -> sim::Task<void> {
        const std::uint64_t scan_units = kTotal / fs.layout().unit();
        for (std::uint64_t u = 0; u < scan_units; ++u) {
          co_await fs.fetch_unit(node, *inputs[static_cast<std::size_t>(node)], u);
        }
      });
}

struct Outcome {
  double wall = 0;       ///< end-to-end simulated seconds
  double disk_busy = 0;  ///< summed array service time (occupancy)
};

Outcome run_setup(const Setup& s) {
  hw::Machine machine(hw::Machine::caltech_paragon(kNodes));
  pablo::Collector collector(machine.engine());
  pfs::ServerConfig server;
  if (s.prefetch > 0) server = pfs::with_prefetch(server, s.prefetch);
  if (s.write_through) server = pfs::with_write_behind(server, 0);
  pfs::Pfs fs(machine, collector, pfs::PfsConfig{server, pfs::ContentPolicy::kExtentsOnly});
  machine.engine().spawn(stage_and_reload(fs, s));
  machine.engine().run();
  Outcome out;
  out.wall = sim::to_seconds(machine.engine().now());
  for (int i = 0; i < fs.server_count(); ++i) {
    out.disk_busy += sim::to_seconds(fs.server(i).disk().busy_time());
  }
  return out;
}

}  // namespace

int main() {
  std::printf("Ablation: §7 design principles on an 8 MB stage+reload cycle\n");
  std::printf("(request stream: naive = 2KB sequential, tuned = 128KB aligned)\n\n");

  const Setup setups[] = {
      {"naive, vanilla PFS", false, 0, false, false},
      {"naive + aggregation", true, 0, false, false},
      {"naive + prefetch(2)", false, 2, false, false},
      {"naive + aggregation + prefetch", true, 2, false, false},
      {"naive, write-through (no WB)", false, 0, true, false},
      {"tuned stream, vanilla PFS", false, 0, false, true},
  };

  double naive = 0, tuned = 0, agg = 0;
  pablo::TextTable t({"configuration", "wall_s", "vs naive", "disk_busy_s"});
  for (const auto& s : setups) {
    const Outcome o = run_setup(s);
    if (std::string(s.name) == "naive, vanilla PFS") naive = o.wall;
    if (std::string(s.name) == "tuned stream, vanilla PFS") tuned = o.wall;
    if (std::string(s.name) == "naive + aggregation") agg = o.wall;
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx", naive > 0 ? naive / o.wall : 1.0);
    t.add_row({s.name, pablo::fmt_fixed(o.wall, 3), speedup, pablo::fmt_fixed(o.disk_busy, 2)});
  }
  std::fputs(t.render().c_str(), stdout);

  std::printf(
      "\nClaim check: client-library request aggregation alone recovers %.0f%% of\n"
      "the hand-tuning gap without touching the application's natural request\n"
      "stream (paper §7: request aggregation / prefetching / write-behind by\n"
      "the file system eliminate the need for code restructuring).  Server\n"
      "prefetch cuts array occupancy (disk_busy column) on the cold scans; its\n"
      "end-to-end effect depends on queue structure, as §7's caution about\n"
      "policy/workload matching anticipates.\n",
      100.0 * (naive - agg) / (naive - tuned > 0 ? naive - tuned : 1.0));
  return 0;
}
