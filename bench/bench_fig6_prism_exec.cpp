// Reproduces paper Figure 6: total execution time for the three PRISM code
// versions (64 nodes), showing the ~23% reduction from A to C.

#include <cstdio>

#include "core/figures.hpp"

int main() {
  const auto study = sio::core::run_prism_study();
  std::fputs(sio::core::render_fig6(study).c_str(), stdout);
  return 0;
}
