// Reproduces paper Figure 7: cumulative distributions of PRISM read/write
// request sizes — many tiny (<40 byte) requests, with a few >150 KB requests
// carrying the bulk of the data volume.

#include <cstdio>

#include "core/figures.hpp"

int main() {
  const auto study = sio::core::run_prism_study();
  std::fputs(sio::core::render_fig7(study).c_str(), stdout);
  return 0;
}
