// Reproduces paper Table 1: node activity and file access modes for each
// ESCAT phase and code version, as encoded in the workload model.

#include <cstdio>

#include "core/figures.hpp"

int main() {
  std::fputs(sio::core::render_table1().c_str(), stdout);
  return 0;
}
