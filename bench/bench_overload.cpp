// Overload bench: the three storm scenarios at 1x / 2x / 4x offered load,
// protection on, plus the unprotected 4x point for comparison.
//
// For every cell the bench prints the goodput / shedding / latency summary
// and appends a machine-readable record to `bench_overload.json` (path
// overridable as argv[1]).  CI gates the protected cells' goodput against
// the checked-in baseline via tools/bench_gate.py.
//
// Everything is seeded: rerunning this binary reproduces every number.

#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "core/sio.hpp"

namespace {

using namespace sio;

void append_json(std::string& out, const core::OverloadConfig& cfg,
                 const core::OverloadResult& r) {
  out += "  {\"scenario\": \"" + std::string(core::overload_scenario_name(cfg.scenario)) + "\"";
  out += ", \"offered_load\": " + pablo::fmt_fixed(cfg.offered_load, 1);
  out += std::string(", \"qos\": ") + (cfg.qos ? "true" : "false");
  out += ", \"offered_ops\": " + std::to_string(r.offered_ops);
  out += ", \"completed_ops\": " + std::to_string(r.completed_ops);
  out += ", \"failed_ops\": " + std::to_string(r.failed_ops);
  out += ", \"goodput_ops_per_s\": " + pablo::fmt_fixed(r.goodput_ops_per_s, 3);
  out += ", \"exec_time_s\": " + pablo::fmt_fixed(r.exec_seconds(), 6);
  out += ", \"p50_latency_s\": " + pablo::fmt_fixed(sim::to_seconds(r.p50_latency), 6);
  out += ", \"p99_latency_s\": " + pablo::fmt_fixed(sim::to_seconds(r.p99_latency), 6);
  out += ", \"retries\": " + std::to_string(r.retries);
  out += ", \"timeouts\": " + std::to_string(r.timeouts);
  out += ", \"rejected\": " + std::to_string(r.rejected);
  out += ", \"shed\": " + std::to_string(r.shed);
  out += ", \"paced_meta\": " + std::to_string(r.paced_meta);
  out += ", \"reroutes\": " + std::to_string(r.reroutes);
  out += ", \"breaker_opens\": " + std::to_string(r.breaker_opens);
  out += ", \"breaker_holds\": " + std::to_string(r.breaker_holds);
  out += ", \"max_pending\": " + std::to_string(r.max_pending);
  out += ", \"peak_cpu_queue\": " + std::to_string(r.peak_cpu_queue);
  out += ", \"starved_windows\": " + std::to_string(r.starved_windows);
  out += "}";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "bench_overload.json";

  std::vector<core::OverloadConfig> cells;
  for (auto scenario : {core::OverloadScenario::kOpenStampede, core::OverloadScenario::kHotStripe,
                        core::OverloadScenario::kRetryStorm, core::OverloadScenario::kCkptBurst}) {
    for (double load : {1.0, 2.0, 4.0}) {
      core::OverloadConfig cfg;
      cfg.scenario = scenario;
      cfg.offered_load = load;
      cells.push_back(cfg);
    }
    core::OverloadConfig raw;
    raw.scenario = scenario;
    raw.offered_load = 4.0;
    raw.qos = false;
    cells.push_back(raw);
  }

  // Independent seeded runs: fan out, render in fixed cell order.
  std::vector<std::function<core::OverloadResult()>> jobs;
  for (const auto& cfg : cells) {
    jobs.push_back([cfg] { return core::run_overload(cfg); });
  }
  const auto results = core::ParallelRunner().run<core::OverloadResult>(jobs);

  std::string json = "[\n";
  std::printf("Overload storms: goodput under offered load, protection on/off\n\n");
  std::printf("%-15s %5s %4s | %9s %9s %7s | %9s %8s %8s | %7s %7s\n", "scenario", "load", "qos",
              "completed", "goodput/s", "failed", "p99(ms)", "rejected", "shed", "maxpend",
              "starved");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& cfg = cells[i];
    const auto& r = results[i];
    std::printf("%-15s %4.1fx %4s | %9llu %9.1f %7llu | %9.2f %8llu %8llu | %7zu %7d\n",
                core::overload_scenario_name(cfg.scenario), cfg.offered_load,
                cfg.qos ? "on" : "off", static_cast<unsigned long long>(r.completed_ops),
                r.goodput_ops_per_s, static_cast<unsigned long long>(r.failed_ops),
                sim::to_seconds(r.p99_latency) * 1e3, static_cast<unsigned long long>(r.rejected),
                static_cast<unsigned long long>(r.shed), r.max_pending, r.starved_windows);
    if (i != 0) json += ",\n";
    append_json(json, cfg, r);
  }
  json += "\n]\n";

  std::ofstream f(json_path);
  f << json;
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}
