// Resilience bench: the tuned (version C) ESCAT and PRISM codes under the
// three canned fault scenarios, each against its fault-free baseline.
//
//   fault-free     no injections, retry machinery disabled
//   disk-degraded  spindle failures + background rebuild + stuck requests
//   io-node-crash  server crash/restart with write-back cache loss
//   slow-link      lossy/slow compute->io links plus one short outage
//
// plus the silent-corruption ablation: the seeded bit-rot plan against all
// three verification modes (off / verify / repair), showing what each layer
// of the integrity machinery buys.
//
// For every (app, plan) cell the bench prints the resilience report
// (injections, per-phase timeout/retry/failure counts, added I/O and
// execution time) and appends a machine-readable record to
// `bench_resilience.json` (path overridable as argv[1]) for CI archival.
// Corruption cells additionally append detected/repaired/lost byte counts
// to `bench_integrity.json` (argv[2]) for the integrity artifact.
//
// Everything is seeded: rerunning this binary reproduces every number.

#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "core/sio.hpp"

namespace {

using namespace sio;

struct Cell {
  std::string app;
  std::string plan;
  core::RunResult run;
};

/// Served data operations per simulated second — the resilience analogue of
/// the overload bench's goodput, gated by CI against the checked-in baseline.
double goodput_ops_per_s(const core::RunResult& run) {
  std::uint64_t served = 0;
  for (const auto& ev : run.events) {
    if (ev.op == pablo::IoOp::kRead || ev.op == pablo::IoOp::kWrite) ++served;
  }
  const double secs = sim::to_seconds(run.exec_time);
  return secs > 0 ? static_cast<double>(served) / secs : 0.0;
}

void append_json(std::string& out, const Cell& c, const core::RunResult& baseline) {
  const auto& rc = c.run.resilience;
  out += "  {\"app\": \"" + c.app + "\", \"plan\": \"" + c.plan + "\"";
  out += ", \"goodput_ops_per_s\": " + pablo::fmt_fixed(goodput_ops_per_s(c.run), 3);
  out += ", \"exec_time_s\": " + pablo::fmt_fixed(sim::to_seconds(c.run.exec_time), 6);
  out += ", \"io_time_s\": " + pablo::fmt_fixed(sim::to_seconds(c.run.io_time()), 6);
  out += ", \"baseline_exec_time_s\": " +
         pablo::fmt_fixed(sim::to_seconds(baseline.exec_time), 6);
  out += ", \"baseline_io_time_s\": " + pablo::fmt_fixed(sim::to_seconds(baseline.io_time()), 6);
  out += ", \"injected\": " + std::to_string(c.run.fault_events.size());
  out += ", \"retries\": " + std::to_string(rc.retries);
  out += ", \"timeouts\": " + std::to_string(rc.timeouts);
  out += ", \"failed_ops\": " + std::to_string(rc.failed_ops);
  out += ", \"replayed_ops\": " + std::to_string(rc.replayed_ops);
  out += ", \"coalesced_ops\": " + std::to_string(rc.coalesced_ops);
  out += ", \"dropped_messages\": " + std::to_string(rc.dropped_messages);
  out += ", \"degraded_disk_ops\": " + std::to_string(rc.degraded_disk_ops);
  out += ", \"stuck_disk_ops\": " + std::to_string(rc.stuck_disk_ops);
  out += ", \"server_crashes\": " + std::to_string(rc.server_crashes);
  out += "}";
}

/// Integrity artifact record: only the corruption cells have one.
void append_integrity_json(std::string& out, const Cell& c) {
  const auto& g = c.run.integrity;
  out += "  {\"app\": \"" + c.app + "\", \"plan\": \"" + c.plan + "\"";
  out += ", \"mode\": \"" + g.mode + "\"";
  out += ", \"rotted_units\": " + std::to_string(g.rotted_units);
  out += ", \"rotted_bytes\": " + std::to_string(g.rotted_bytes);
  out += ", \"detected_verify_fails\": " + std::to_string(g.verify_fails);
  out += ", \"detected_scrub\": " + std::to_string(g.scrub_detects);
  out += ", \"read_repairs\": " + std::to_string(g.read_repairs);
  out += ", \"scrub_repairs\": " + std::to_string(g.scrub_repairs);
  out += ", \"repairs_lost\": " + std::to_string(g.repairs_lost);
  out += ", \"scrub_units_checked\": " + std::to_string(g.scrub_units_checked);
  out += ", \"corrupt_bytes_acked\": " + std::to_string(g.corrupt_bytes_acked);
  out += ", \"residual_corrupt_units\": " + std::to_string(g.residual_corrupt_units);
  out += ", \"residual_corrupt_bytes\": " + std::to_string(g.residual_corrupt_bytes);
  out += "}";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "bench_resilience.json";
  const std::string integrity_path = argc > 2 ? argv[2] : "bench_integrity.json";
  constexpr std::uint64_t kSeed = 510;

  struct PlanRow {
    const char* name;
    fault::FaultPlan plan;
  };
  const std::vector<PlanRow> plans = {
      {"disk-degraded", fault::FaultPlan::disk_degraded(kSeed)},
      {"io-node-crash", fault::FaultPlan::io_node_crash(kSeed)},
      {"slow-link", fault::FaultPlan::slow_link(kSeed)},
      // The corruption ablation: one seeded bit-rot schedule, three
      // verification modes.
      {"bit-rot-off", fault::FaultPlan::bit_rot_plan(kSeed, pfs::IntegrityMode::kOff)},
      {"bit-rot-verify", fault::FaultPlan::bit_rot_plan(kSeed, pfs::IntegrityMode::kVerify)},
      {"bit-rot-repair", fault::FaultPlan::bit_rot_plan(kSeed, pfs::IntegrityMode::kRepair)},
  };

  // All eight cells (2 fault-free baselines + 2 apps x 3 plans) are
  // independent seeded runs: fan them out, then render serially in the fixed
  // cell order so stdout and the JSON are identical to the serial version.
  // Faulted cells run with causal tracing on so each scenario's summary can
  // append the critical-path attribution (where retries, backoff, reroutes
  // and journal time landed).  Spans never touch engine timing, so the
  // resilience counters are identical to an untraced run.
  core::TraceOptions traced;
  traced.spans = true;
  traced.streaming = true;
  std::vector<std::function<core::RunResult()>> jobs;
  for (const char* app : {"escat", "prism"}) {
    const bool is_escat = std::string(app) == "escat";
    jobs.push_back([is_escat] {
      return is_escat ? core::run_escat(apps::escat::make_config(apps::escat::Version::C), kSeed)
                      : core::run_prism(apps::prism::make_config(apps::prism::Version::C), kSeed);
    });
    for (const auto& row : plans) {
      jobs.push_back([is_escat, traced, plan = row.plan] {
        return is_escat
                   ? core::run_escat(apps::escat::make_config(apps::escat::Version::C), plan,
                                     traced, kSeed)
                   : core::run_prism(apps::prism::make_config(apps::prism::Version::C), plan,
                                     traced, kSeed);
      });
    }
  }
  const auto results = core::ParallelRunner().run<core::RunResult>(jobs);

  std::string json = "[\n";
  std::string integrity_json = "[\n";
  bool first = true;
  bool integrity_first = true;

  std::printf("Resilience: tuned ESCAT/PRISM (version C) under canned fault plans\n\n");

  std::size_t idx = 0;
  for (const char* app : {"escat", "prism"}) {
    const auto& baseline = results[idx++];
    for (const auto& row : plans) {
      Cell c;
      c.app = app;
      c.plan = row.name;
      c.run = results[idx++];
      std::printf("==== %s / %s ====\n", c.app.c_str(), c.plan.c_str());
      std::fputs(core::render_resilience_summary(c.run, baseline).c_str(), stdout);
      std::printf("\n");
      if (!first) json += ",\n";
      first = false;
      append_json(json, c, baseline);
      if (!c.run.integrity.empty()) {
        if (!integrity_first) integrity_json += ",\n";
        integrity_first = false;
        append_integrity_json(integrity_json, c);
      }
    }
  }
  json += "\n]\n";
  integrity_json += "\n]\n";

  std::ofstream f(json_path);
  f << json;
  std::printf("wrote %s\n", json_path.c_str());
  std::ofstream fi(integrity_path);
  fi << integrity_json;
  std::printf("wrote %s\n", integrity_path.c_str());
  return 0;
}
