// Reproduces paper Table 4: node activity and file access modes for each
// PRISM phase and code version, as encoded in the workload model.

#include <cstdio>

#include "core/figures.hpp"

int main() {
  std::fputs(sio::core::render_table4().c_str(), stdout);
  return 0;
}
