// Microbenchmarks (google-benchmark) for the simulator substrate itself:
// event dispatch throughput, coroutine task overhead, synchronization
// primitives, striping arithmetic, RNG, and a small end-to-end PFS
// operation.  These bound how much simulated work the reproduction can
// afford — the full ESCAT/PRISM studies dispatch a few million events.

#include <benchmark/benchmark.h>

#include "core/sio.hpp"

namespace {

using namespace sio;

void BM_EngineScheduleDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine e;
    for (int i = 0; i < 1000; ++i) {
      e.schedule_at(i, [] {});
    }
    e.run();
    benchmark::DoNotOptimize(e.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineScheduleDispatch);

sim::Task<void> hopper(sim::Engine& e, int hops) {
  for (int i = 0; i < hops; ++i) {
    co_await e.delay(1);
  }
}

void BM_CoroutineDelayHops(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine e;
    e.spawn(hopper(e, 1000));
    e.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_CoroutineDelayHops);

sim::Task<void> locker(sim::Engine& e, sim::Mutex& m, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    auto g = co_await m.scoped();
    co_await e.delay(1);
  }
}

void BM_MutexContention(benchmark::State& state) {
  const int tasks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine e;
    sim::Mutex m(e);
    for (int t = 0; t < tasks; ++t) e.spawn(locker(e, m, 100));
    e.run();
  }
  state.SetItemsProcessed(state.iterations() * tasks * 100);
}
BENCHMARK(BM_MutexContention)->Arg(2)->Arg(16)->Arg(128);

void BM_StripeMap(benchmark::State& state) {
  pfs::StripeLayout layout(64 * 1024, 16);
  std::uint64_t off = 0;
  for (auto _ : state) {
    auto segs = layout.map(off, 155584);
    benchmark::DoNotOptimize(segs.data());
    off += 131071;
  }
}
BENCHMARK(BM_StripeMap);

void BM_RngUniform(benchmark::State& state) {
  sim::Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.uniform_int(0, 1 << 20));
  }
}
BENCHMARK(BM_RngUniform);

void BM_CdfBuild(benchmark::State& state) {
  sim::Rng rng(7);
  std::vector<std::uint64_t> sizes;
  for (int i = 0; i < 10000; ++i) {
    sizes.push_back(static_cast<std::uint64_t>(rng.uniform_int(1, 1 << 20)));
  }
  for (auto _ : state) {
    auto copy = sizes;
    pablo::SizeCdf cdf(std::move(copy));
    benchmark::DoNotOptimize(cdf.total_bytes());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_CdfBuild);

sim::Task<void> pfs_writer(pfs::Pfs& fs, pfs::FileState& file, int ops) {
  for (int i = 0; i < ops; ++i) {
    co_await fs.transfer(0, file, static_cast<std::uint64_t>(i) * 2048, 2048, true, true);
  }
}

void BM_PfsSmallWrites(benchmark::State& state) {
  for (auto _ : state) {
    hw::Machine machine(hw::Machine::caltech_paragon(16));
    pablo::Collector collector(machine.engine());
    pfs::Pfs fs(machine, collector);
    auto& file = fs.stage_file("m/bench", 0);
    machine.engine().spawn(pfs_writer(fs, file, 256));
    machine.engine().run();
    benchmark::DoNotOptimize(machine.engine().events_processed());
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_PfsSmallWrites);

void BM_EscatSmallRun(benchmark::State& state) {
  apps::escat::Workload w;
  w.nodes = 16;
  w.quad_cycles = 8;
  w.reload_record = 16 * 1024;
  w.init_small_reads = 10;
  for (auto _ : state) {
    auto cfg = apps::escat::make_config(apps::escat::Version::C, w);
    const auto r = core::run_escat(cfg);
    benchmark::DoNotOptimize(r.exec_time);
  }
}
BENCHMARK(BM_EscatSmallRun);

}  // namespace

BENCHMARK_MAIN();
