// Microbenchmarks (google-benchmark) for the simulator substrate itself:
// event dispatch throughput, coroutine task overhead, synchronization
// primitives, striping arithmetic, RNG, and a small end-to-end PFS
// operation.  These bound how much simulated work the reproduction can
// afford — the full ESCAT/PRISM studies dispatch a few million events.
//
// CI runs this with `--benchmark_out=BENCH_micro_sim.json
// --benchmark_out_format=json` and gates BM_EngineScheduleDispatch against
// bench/BASELINE_micro_sim.json via tools/bench_gate.py.

#include <benchmark/benchmark.h>

#include <functional>
#include <queue>

#include "core/sio.hpp"
#include "sim/callback.hpp"
#include "sim/wheel.hpp"

namespace {

using namespace sio;

void BM_EngineScheduleDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine e;
    for (int i = 0; i < 1000; ++i) {
      e.schedule_at(i, [] {});
    }
    e.run();
    benchmark::DoNotOptimize(e.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineScheduleDispatch);

sim::Task<void> hopper(sim::Engine& e, int hops) {
  for (int i = 0; i < hops; ++i) {
    co_await e.delay(1);
  }
}

void BM_CoroutineDelayHops(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine e;
    e.spawn(hopper(e, 1000));
    e.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_CoroutineDelayHops);

sim::Task<void> locker(sim::Engine& e, sim::Mutex& m, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    auto g = co_await m.scoped();
    co_await e.delay(1);
  }
}

void BM_MutexContention(benchmark::State& state) {
  const int tasks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine e;
    sim::Mutex m(e);
    for (int t = 0; t < tasks; ++t) e.spawn(locker(e, m, 100));
    e.run();
  }
  state.SetItemsProcessed(state.iterations() * tasks * 100);
}
BENCHMARK(BM_MutexContention)->Arg(2)->Arg(16)->Arg(128);

// ---- event-store comparison: timing wheel vs. the old priority queue ------

/// The engine's pre-overhaul event store, inlined here as the baseline: a
/// binary heap of (time, seq, std::function).  One heap allocation per
/// scheduled callable, O(log n) per push/pop.
class HeapStore {
 public:
  void schedule(sim::Tick at, std::function<void()> fn) {
    q_.push({at, seq_++, std::move(fn)});
  }
  bool run_one() {
    if (q_.empty()) return false;
    now_ = q_.top().at;
    auto fn = std::move(const_cast<Ev&>(q_.top()).fn);
    q_.pop();
    fn();
    return true;
  }
  sim::Tick now() const { return now_; }

 private:
  struct Ev {
    sim::Tick at;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Ev& a, const Ev& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  sim::Tick now_ = 0;
  std::uint64_t seq_ = 0;
  std::priority_queue<Ev, std::vector<Ev>, Later> q_;
};

void BM_WheelVsHeap_Heap(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    HeapStore s;
    for (int i = 0; i < n; ++i) s.schedule(i, [] {});
    while (s.run_one()) {
    }
    benchmark::DoNotOptimize(s.now());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_WheelVsHeap_Heap)->Arg(1000)->Arg(100000);

void BM_WheelVsHeap_Wheel(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::TimingWheel w;
    for (int i = 0; i < n; ++i) w.emplace(i, [] {});
    sim::EventNode* node;
    while ((node = w.pop_next(sim::kMaxTick)) != nullptr) {
      node->cb.invoke();
      w.release(node);
    }
    benchmark::DoNotOptimize(w.now());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_WheelVsHeap_Wheel)->Arg(1000)->Arg(100000);

void BM_WheelFarFutureDispatch(benchmark::State& state) {
  // Far-future events exercise the overflow heap and the settle/demote path:
  // each lands ~2^34 ticks out (past the wheel's 2^33 span), descends through
  // two coarse levels, and fires from level 0.
  for (auto _ : state) {
    sim::TimingWheel w;
    for (int i = 0; i < 1000; ++i) {
      w.emplace(w.now() + (sim::Tick{1} << 34) + i, [] {});
    }
    sim::EventNode* node;
    while ((node = w.pop_next(sim::kMaxTick)) != nullptr) {
      node->cb.invoke();
      w.release(node);
    }
    benchmark::DoNotOptimize(w.now());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_WheelFarFutureDispatch);

// ---- InlineCallback dispatch: inline storage vs. the boxed fallback -------

void BM_InlineCallbackDispatch_Inline(benchmark::State& state) {
  std::uint64_t sink = 0;
  sim::InlineCallback cb;
  auto fn = [&sink] { ++sink; };
  static_assert(sim::InlineCallback::stores_inline<decltype(fn)>());
  for (auto _ : state) {
    cb.emplace(fn);
    cb.invoke();
    cb.reset();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InlineCallbackDispatch_Inline);

void BM_InlineCallbackDispatch_Boxed(benchmark::State& state) {
  std::uint64_t sink = 0;
  std::uint64_t pad[4] = {};
  sim::InlineCallback cb;
  auto fn = [&sink, pad] { sink += pad[0] + 1; };
  static_assert(!sim::InlineCallback::stores_inline<decltype(fn)>());
  for (auto _ : state) {
    cb.emplace(fn);
    cb.invoke();
    cb.reset();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InlineCallbackDispatch_Boxed);

// ---- ParallelRunner scaling ----------------------------------------------

void BM_ParallelRunnerScaling(benchmark::State& state) {
  // Eight identical seeded mini-sims fanned across 1..N workers.  On a
  // single-core container every arg measures the same serial work plus pool
  // overhead; on multi-core hosts items/sec scales with the thread count.
  const unsigned threads = static_cast<unsigned>(state.range(0));
  std::vector<std::function<std::uint64_t()>> jobs;
  for (int j = 0; j < 8; ++j) {
    jobs.push_back([] {
      sim::Engine e;
      for (int i = 0; i < 20000; ++i) e.schedule_at(i, [] {});
      e.run();
      return e.events_processed();
    });
  }
  core::ParallelRunner pool(threads);
  for (auto _ : state) {
    const auto out = pool.run<std::uint64_t>(jobs);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 8 * 20000);
}
BENCHMARK(BM_ParallelRunnerScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_StripeMap(benchmark::State& state) {
  pfs::StripeLayout layout(64 * 1024, 16);
  std::uint64_t off = 0;
  for (auto _ : state) {
    auto segs = layout.map(off, 155584);
    benchmark::DoNotOptimize(segs.data());
    off += 131071;
  }
}
BENCHMARK(BM_StripeMap);

void BM_RngUniform(benchmark::State& state) {
  sim::Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.uniform_int(0, 1 << 20));
  }
}
BENCHMARK(BM_RngUniform);

void BM_CdfBuild(benchmark::State& state) {
  sim::Rng rng(7);
  std::vector<std::uint64_t> sizes;
  for (int i = 0; i < 10000; ++i) {
    sizes.push_back(static_cast<std::uint64_t>(rng.uniform_int(1, 1 << 20)));
  }
  for (auto _ : state) {
    auto copy = sizes;
    pablo::SizeCdf cdf(std::move(copy));
    benchmark::DoNotOptimize(cdf.total_bytes());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_CdfBuild);

sim::Task<void> pfs_writer(pfs::Pfs& fs, pfs::FileState& file, int ops) {
  for (int i = 0; i < ops; ++i) {
    co_await fs.transfer(0, file, static_cast<std::uint64_t>(i) * 2048, 2048, true, true);
  }
}

void BM_PfsSmallWrites(benchmark::State& state) {
  for (auto _ : state) {
    hw::Machine machine(hw::Machine::caltech_paragon(16));
    pablo::Collector collector(machine.engine());
    pfs::Pfs fs(machine, collector);
    auto& file = fs.stage_file("m/bench", 0);
    machine.engine().spawn(pfs_writer(fs, file, 256));
    machine.engine().run();
    benchmark::DoNotOptimize(machine.engine().events_processed());
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_PfsSmallWrites);

void BM_EscatSmallRun(benchmark::State& state) {
  apps::escat::Workload w;
  w.nodes = 16;
  w.quad_cycles = 8;
  w.reload_record = 16 * 1024;
  w.init_small_reads = 10;
  for (auto _ : state) {
    auto cfg = apps::escat::make_config(apps::escat::Version::C, w);
    const auto r = core::run_escat(cfg);
    benchmark::DoNotOptimize(r.exec_time);
  }
}
BENCHMARK(BM_EscatSmallRun);

}  // namespace

BENCHMARK_MAIN();
