// Microbenchmarks (google-benchmark) for the trace pipeline: text vs binary
// SDDF emission, decode, and the streaming-analytics fold.  These bound the
// event rates the capture path sustains — the acceptance gate requires
// binary emission to beat text by >= 3x while producing >= 5x smaller
// output, and the streaming fold to keep up with capture.
//
// CI runs this with `--benchmark_out=BENCH_trace.json
// --benchmark_out_format=json` and gates BM_TraceEmitBinary,
// BM_TraceStreamingFold and BM_SpanEmit against bench/BASELINE_trace.json
// via tools/bench_gate.py.

#include <benchmark/benchmark.h>

#include <sstream>
#include <vector>

#include "obs/trace.hpp"
#include "pablo/binsddf.hpp"
#include "pablo/sddf.hpp"
#include "pablo/streaming.hpp"
#include "sim/engine.hpp"

namespace {

using namespace sio;

/// A synthetic but realistic event mix: interleaved nodes, mostly sequential
/// reads/writes with periodic seeks, a few files, deterministic sizes and
/// timings (modeled on the PRISM access pattern, the least compressible of
/// the paper traces).
std::vector<pablo::TraceEvent> make_events(std::size_t count, int nodes) {
  std::vector<pablo::TraceEvent> evs;
  evs.reserve(count);
  std::vector<std::uint64_t> node_off(static_cast<std::size_t>(nodes), 0);
  sim::Tick now = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const int node = static_cast<int>(i % static_cast<std::size_t>(nodes));
    pablo::TraceEvent ev;
    ev.start = now;
    ev.node = node;
    const std::size_t phase = i % 16;
    if (phase == 0) {
      ev.op = pablo::IoOp::kSeek;
      ev.file = 1;
      ev.offset = node_off[static_cast<std::size_t>(node)];
      ev.duration = 2'000 + (i % 7) * 350;
    } else if (phase < 12) {
      ev.op = pablo::IoOp::kRead;
      ev.file = 1;
      ev.bytes = (phase % 3 == 0) ? 65536 : 4096;
      ev.offset = node_off[static_cast<std::size_t>(node)];
      node_off[static_cast<std::size_t>(node)] += ev.bytes;
      ev.duration = 40'000 + static_cast<sim::Tick>(ev.bytes / 16) + (i % 5) * 1'700;
    } else {
      ev.op = pablo::IoOp::kWrite;
      ev.file = 2;
      ev.bytes = 8192;
      ev.offset = node_off[static_cast<std::size_t>(node)] * 2;
      ev.duration = 55'000 + (i % 11) * 900;
    }
    now += 1'000 + (i % 13) * 260;
    evs.push_back(ev);
  }
  return evs;
}

const std::vector<std::string> kFiles = {"bench/meta", "bench/data", "bench/out"};
constexpr std::size_t kEvents = 16384;
constexpr int kNodes = 64;

void BM_TraceEmitText(benchmark::State& state) {
  const auto evs = make_events(kEvents, kNodes);
  std::size_t bytes = 0;
  for (auto _ : state) {
    std::ostringstream out;
    pablo::write_sddf(out, kFiles, evs);
    const std::string s = out.str();
    bytes = s.size();
    benchmark::DoNotOptimize(s.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kEvents));
  state.counters["bytes_per_event"] =
      static_cast<double>(bytes) / static_cast<double>(kEvents);
}
BENCHMARK(BM_TraceEmitText);

void BM_TraceEmitBinary(benchmark::State& state) {
  const auto evs = make_events(kEvents, kNodes);
  std::size_t bytes = 0;
  for (auto _ : state) {
    pablo::BinarySddfWriter w;
    for (const auto& name : kFiles) w.add_file(name);
    for (const auto& ev : evs) w.add_event(ev);
    const std::string s = w.finish();
    bytes = s.size();
    benchmark::DoNotOptimize(s.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kEvents));
  state.counters["bytes_per_event"] =
      static_cast<double>(bytes) / static_cast<double>(kEvents);
}
BENCHMARK(BM_TraceEmitBinary);

void BM_TraceDecodeBinary(benchmark::State& state) {
  const auto evs = make_events(kEvents, kNodes);
  const std::string bin = pablo::to_binary_sddf(kFiles, evs);
  for (auto _ : state) {
    pablo::TraceFile tf = pablo::from_binary_sddf(bin);
    benchmark::DoNotOptimize(tf.events.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kEvents));
}
BENCHMARK(BM_TraceDecodeBinary);

void BM_TraceStreamingFold(benchmark::State& state) {
  const auto evs = make_events(kEvents, kNodes);
  for (auto _ : state) {
    pablo::StreamingAnalytics sa;
    for (const auto& ev : evs) sa.on_event(ev);
    benchmark::DoNotOptimize(sa.fingerprint());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kEvents));
}
BENCHMARK(BM_TraceStreamingFold);

// ---- causal tracing: span emission on vs off ------------------------------

/// Spans per synthetic op tree: root + segment + attempt + the five stages a
/// buffered read passes through (net-req, admit, service, disk, net-resp).
constexpr std::int64_t kSpansPerOp = 8;
constexpr std::int64_t kOpsPerIter = 2048;

/// One op's worth of span traffic through `parent` (null tracer = off path).
void drive_op(const obs::SpanContext& parent, std::uint64_t i) {
  obs::SpanScope op(parent, obs::StageKind::kOp, static_cast<std::int32_t>(i % 64), -1, 4096, 2);
  obs::SpanScope seg(op.ctx(), obs::StageKind::kSegment, 0, 1, 4096);
  seg.set_op_id(i + 1);
  obs::SpanScope att(seg.ctx(), obs::StageKind::kAttempt, 0, 1, 4096, 1);
  { obs::SpanScope net(att.ctx(), obs::StageKind::kNetReq, 0, 1, 4096); }
  { obs::SpanScope adm(att.ctx(), obs::StageKind::kAdmit, 0, 1); }
  {
    obs::SpanScope svc(att.ctx(), obs::StageKind::kService, 0, 1, 4096);
    obs::SpanScope disk(svc.ctx(), obs::StageKind::kDisk, 0, 1, 4096);
  }
  { obs::SpanScope rsp(att.ctx(), obs::StageKind::kNetResp, 0, 1, 64); }
}

/// Tracing on: every scope allocates an id, registers, and emits a binary
/// `#span` record on close.  bytes_per_event = encoded bytes per span.
void BM_SpanEmit(benchmark::State& state) {
  struct BinSink : obs::SpanSink {
    pablo::BinarySddfWriter w;
    void on_span(const obs::SpanEvent& ev) override { w.add_span(ev); }
  };
  std::size_t bytes = 0;
  std::uint64_t spans = 0;
  for (auto _ : state) {
    sim::Engine engine;
    BinSink sink;
    obs::Tracer tracer(engine, sink);
    const obs::SpanContext origin{&tracer, 0, 0};
    for (std::int64_t i = 0; i < kOpsPerIter; ++i) {
      drive_op(origin, static_cast<std::uint64_t>(i));
    }
    spans = tracer.spans_emitted();
    bytes = sink.w.bytes_encoded();
    benchmark::DoNotOptimize(spans);
  }
  state.SetItemsProcessed(state.iterations() * kOpsPerIter * kSpansPerOp);
  state.counters["bytes_per_event"] =
      spans == 0 ? 0.0 : static_cast<double>(bytes) / static_cast<double>(spans);
}
BENCHMARK(BM_SpanEmit);

/// Tracing off: the same instrumentation points ride a null-tracer context.
/// Every scope must cost one predictable branch — no allocation, no id, no
/// record — so this measures the tax every untraced run pays.
void BM_SpanDisabled(benchmark::State& state) {
  const obs::SpanContext off{};
  for (auto _ : state) {
    for (std::int64_t i = 0; i < kOpsPerIter; ++i) {
      drive_op(off, static_cast<std::uint64_t>(i));
      benchmark::DoNotOptimize(i);
    }
  }
  state.SetItemsProcessed(state.iterations() * kOpsPerIter * kSpansPerOp);
}
BENCHMARK(BM_SpanDisabled);

}  // namespace

BENCHMARK_MAIN();
