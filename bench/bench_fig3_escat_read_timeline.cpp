// Reproduces paper Figure 3: ESCAT read request sizes as a function of
// execution time, versions A and C (reads cluster at the start and end).

#include <cstdio>

#include "core/figures.hpp"

int main() {
  const auto study = sio::core::run_escat_study();
  std::fputs(sio::core::render_fig3(study).c_str(), stdout);
  return 0;
}
