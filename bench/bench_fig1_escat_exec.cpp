// Reproduces paper Figure 1: total execution time for the six ESCAT code
// progressions (ethylene, 128 nodes), showing the ~20% overall reduction
// from the first version to the tuned version C.

#include <cstdio>

#include "core/figures.hpp"

int main() {
  std::fputs(sio::core::render_fig1().c_str(), stdout);
  return 0;
}
