// Critical-path latency attribution matrix: where each operation's latency
// goes, mechanism by mechanism.  Extends the paper's Tables 2/3/5 ("% of
// execution time in I/O") one level down: with causal tracing on, every tick
// of every op is attributed to exactly one pipeline stage (network request,
// QoS admission, server service queue, disk, journal, ...), so the tables
// here say not just *how much* time I/O took but *which mechanism* owned it.
//
// Two sweeps, both healthy (fault-free) runs:
//   1. the paper applications — ESCAT A/C, PRISM A/C, and the checkpoint
//      workload in both variants — traced end to end;
//   2. a mode_explorer-style fixed write workload across all six PFS access
//      modes, isolating what each mode's coordination costs on the path.
//
//   ./build/bench/bench_attribution

#include <cstdio>
#include <string>
#include <vector>

#include "apps/ckpt.hpp"
#include "core/sio.hpp"
#include "obs/critical_path.hpp"

namespace {

using namespace sio;

// Per-stage critical-path ticks with all op classes collapsed together.
struct Attribution {
  std::string label;
  std::uint64_t ops = 0;
  sim::Tick total = 0;
  std::array<sim::Tick, obs::kStageKindCount> excl{};
};

Attribution collapse(std::string label, const obs::CriticalPathReport& r) {
  Attribution a;
  a.label = std::move(label);
  for (const auto& row : r.rows) {
    a.ops += row.ops;
    a.total += row.total_latency;
    for (int s = 0; s < obs::kStageKindCount; ++s) a.excl[s] += row.exclusive[s];
  }
  return a;
}

// Renders rows as "% of summed op latency per stage", keeping only stages
// that appear somewhere in the set so healthy runs stay narrow.
std::string render_matrix(const std::vector<Attribution>& rows) {
  std::vector<int> stages;
  for (int s = 0; s < obs::kStageKindCount; ++s) {
    for (const auto& a : rows) {
      if (a.excl[s] > 0) {
        stages.push_back(s);
        break;
      }
    }
  }
  std::vector<std::string> headers{"workload", "ops", "avg-op"};
  for (const int s : stages) {
    headers.push_back(std::string(obs::stage_name(static_cast<obs::StageKind>(s))));
  }
  pablo::TextTable t(std::move(headers));
  for (const auto& a : rows) {
    std::vector<std::string> row{a.label, std::to_string(a.ops)};
    const double avg_ms =
        a.ops == 0 ? 0.0 : sim::to_seconds(a.total) * 1e3 / static_cast<double>(a.ops);
    row.push_back(pablo::fmt_fixed(avg_ms, 2) + "ms");
    for (const int s : stages) {
      const double pct =
          a.total == 0 ? 0.0
                       : 100.0 * static_cast<double>(a.excl[s]) / static_cast<double>(a.total);
      row.push_back(pablo::fmt_fixed(pct, 1));
    }
    t.add_row(std::move(row));
  }
  return t.render();
}

core::TraceOptions spans_on() {
  core::TraceOptions t;
  t.spans = true;
  t.streaming = true;
  t.retain_events = false;  // the streaming fold carries the attribution
  return t;
}

// One node-parallel write pass in the given access mode, traced: 16 nodes
// write 256 KB each in 8 KB requests (the ESCAT staging shape).
Attribution sweep_mode(pfs::IoMode mode) {
  constexpr int kNodes = 16;
  constexpr std::uint64_t kBytesPerNode = 256 * 1024;
  constexpr std::uint64_t kRequest = 8 * 1024;

  hw::Machine machine(hw::Machine::caltech_paragon(kNodes));
  pablo::Collector collector(machine.engine());
  collector.enable_spans();
  pfs::Pfs fs(machine, collector);
  auto group = pfs::Group::contiguous(machine.engine(), kNodes);

  machine.engine().spawn(apps::parallel_section(
      machine.engine(), kNodes, [&](int node) -> sim::Task<void> {
        pfs::OpenOptions opts;
        opts.mode = mode;
        opts.truncate = true;
        if (mode == pfs::IoMode::kRecord) opts.record_size = kRequest;
        auto fh = co_await fs.gopen(node, "x/attr", *group, opts);

        const int requests = static_cast<int>(kBytesPerNode / kRequest);
        const int rank = group->rank_of(node);
        for (int i = 0; i < requests; ++i) {
          switch (mode) {
            case pfs::IoMode::kUnix:
            case pfs::IoMode::kAsync: {
              const std::uint64_t off =
                  (static_cast<std::uint64_t>(i) * kNodes + static_cast<std::uint64_t>(rank)) *
                  kRequest;
              co_await fh.seek(off);
              co_await fh.write(kRequest);
              break;
            }
            default:
              co_await fh.write(kRequest);
              break;
          }
        }
        co_await fh.close();
      }));
  machine.engine().run();
  collector.finish_spans();

  return collapse(std::string(pfs::io_mode_name(mode)),
                  obs::critical_path(collector.span_events()));
}

}  // namespace

int main() {
  const auto plan = fault::FaultPlan::fault_free();
  const auto topt = spans_on();

  std::printf(
      "Critical-path latency attribution (spans on, fault-free runs).\n"
      "Cells: %% of summed per-op latency owned by each stage; every op tick\n"
      "is attributed to exactly one stage, so rows sum to 100.\n\n");

  std::printf("Paper applications, end to end:\n");
  std::vector<Attribution> apps_rows;
  apps_rows.push_back(collapse(
      "escat A", core::run_escat(apps::escat::make_config(apps::escat::Version::A), plan, topt)
                     .critical_path));
  apps_rows.push_back(collapse(
      "escat C", core::run_escat(apps::escat::make_config(apps::escat::Version::C), plan, topt)
                     .critical_path));
  apps_rows.push_back(collapse(
      "prism A", core::run_prism(apps::prism::make_config(apps::prism::Version::A), plan, topt)
                     .critical_path));
  apps_rows.push_back(collapse(
      "prism C", core::run_prism(apps::prism::make_config(apps::prism::Version::C), plan, topt)
                     .critical_path));
  apps_rows.push_back(collapse(
      "ckpt naive",
      core::run_ckpt(apps::ckpt::make_config(apps::ckpt::Variant::kNaive), plan, topt)
          .critical_path));
  apps_rows.push_back(collapse(
      "ckpt aggregated",
      core::run_ckpt(apps::ckpt::make_config(apps::ckpt::Variant::kAggregated), plan, topt)
          .critical_path));
  std::fputs(render_matrix(apps_rows).c_str(), stdout);

  std::printf(
      "\nSix PFS access modes, fixed workload (16 nodes x 256 KB, 8 KB"
      " requests):\n");
  std::vector<Attribution> mode_rows;
  for (const auto mode :
       {pfs::IoMode::kUnix, pfs::IoMode::kRecord, pfs::IoMode::kAsync, pfs::IoMode::kGlobal,
        pfs::IoMode::kSync, pfs::IoMode::kLog}) {
    mode_rows.push_back(sweep_mode(mode));
  }
  std::fputs(render_matrix(mode_rows).c_str(), stdout);

  std::printf(
      "\nReadings: the tuned runs (escat C, prism C, aggregated ckpt) spend\n"
      "the path in server service — the array itself; naive ckpt's 1 KB\n"
      "writes drown in that same queue; M_UNIX and M_LOG pay their shared\n"
      "pointer in metadata token traffic, and the collective modes swap it\n"
      "for barrier sync on the path.\n");
  return 0;
}
