// Reproduces paper Table 2: aggregate I/O performance summaries for ESCAT —
// the percentage of total I/O time attributable to each operation type, for
// code versions A, B and C on the ethylene dataset (128 nodes).

#include <cstdio>

#include "core/figures.hpp"

int main() {
  const auto study = sio::core::run_escat_study();
  std::fputs(sio::core::render_table2(study).c_str(), stdout);
  std::fputs("\n", stdout);
  std::fputs(sio::core::render_io_share_table(study.a, "Detail: version A").c_str(), stdout);
  std::fputs(sio::core::render_io_share_table(study.b, "Detail: version B").c_str(), stdout);
  std::fputs(sio::core::render_io_share_table(study.c, "Detail: version C").c_str(), stdout);
  return 0;
}
