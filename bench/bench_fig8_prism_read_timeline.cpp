// Reproduces paper Figure 8: PRISM read sizes over the phase-one window for
// all three versions — A's serialized spread, B's compact synchronized
// pattern, and C's re-lengthened window after buffering was disabled.

#include <cstdio>

#include "core/figures.hpp"

int main() {
  const auto study = sio::core::run_prism_study();
  std::fputs(sio::core::render_fig8(study).c_str(), stdout);
  return 0;
}
