// Reproduces paper Figure 9: PRISM version C write sizes over execution time
// — the five checkpoint bursts and the final field dump are clearly visible.

#include <cstdio>

#include "core/figures.hpp"

int main() {
  const auto study = sio::core::run_prism_study();
  std::fputs(sio::core::render_fig9(study).c_str(), stdout);
  return 0;
}
