// Reproduces paper Figure 2: cumulative distributions of ESCAT read/write
// request sizes, with both operation-count and byte-volume weightings.

#include <cstdio>

#include "core/figures.hpp"

int main() {
  const auto study = sio::core::run_escat_study();
  std::fputs(sio::core::render_fig2(study).c_str(), stdout);
  return 0;
}
