// Reproduces paper Figure 5: ESCAT seek operation durations — version B's
// serialized shared-file seeks vs version C's local M_ASYNC pointer updates
// (note the order-of-magnitude gap between the y-axes).

#include <cstdio>

#include "core/figures.hpp"

int main() {
  const auto study = sio::core::run_escat_study();
  std::fputs(sio::core::render_fig5(study).c_str(), stdout);
  return 0;
}
