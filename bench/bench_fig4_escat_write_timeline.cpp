// Reproduces paper Figure 4: ESCAT write request sizes over execution time —
// version A's four node-zero request sizes vs version C's uniform M_ASYNC
// writes from all nodes.

#include <cstdio>

#include "core/figures.hpp"

int main() {
  const auto study = sio::core::run_escat_study();
  std::fputs(sio::core::render_fig4(study).c_str(), stdout);
  return 0;
}
