# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_engine_test[1]_include.cmake")
include("/root/repo/build/tests/sim_sync_test[1]_include.cmake")
include("/root/repo/build/tests/sim_random_test[1]_include.cmake")
include("/root/repo/build/tests/machine_topology_test[1]_include.cmake")
include("/root/repo/build/tests/machine_disk_test[1]_include.cmake")
include("/root/repo/build/tests/machine_network_test[1]_include.cmake")
include("/root/repo/build/tests/pfs_stripe_test[1]_include.cmake")
include("/root/repo/build/tests/pfs_content_test[1]_include.cmake")
include("/root/repo/build/tests/pfs_server_test[1]_include.cmake")
include("/root/repo/build/tests/pfs_modes_test[1]_include.cmake")
include("/root/repo/build/tests/pfs_client_test[1]_include.cmake")
include("/root/repo/build/tests/pfs_policies_test[1]_include.cmake")
include("/root/repo/build/tests/pablo_summary_test[1]_include.cmake")
include("/root/repo/build/tests/pablo_cdf_test[1]_include.cmake")
include("/root/repo/build/tests/pablo_timeline_test[1]_include.cmake")
include("/root/repo/build/tests/pablo_sddf_test[1]_include.cmake")
include("/root/repo/build/tests/pablo_classify_test[1]_include.cmake")
include("/root/repo/build/tests/pfs_group_test[1]_include.cmake")
include("/root/repo/build/tests/pfs_metadata_test[1]_include.cmake")
include("/root/repo/build/tests/apps_escat_test[1]_include.cmake")
include("/root/repo/build/tests/apps_prism_test[1]_include.cmake")
include("/root/repo/build/tests/core_experiment_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
