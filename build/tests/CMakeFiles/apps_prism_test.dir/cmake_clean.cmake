file(REMOVE_RECURSE
  "CMakeFiles/apps_prism_test.dir/apps_prism_test.cpp.o"
  "CMakeFiles/apps_prism_test.dir/apps_prism_test.cpp.o.d"
  "apps_prism_test"
  "apps_prism_test.pdb"
  "apps_prism_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_prism_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
