file(REMOVE_RECURSE
  "CMakeFiles/pfs_policies_test.dir/pfs_policies_test.cpp.o"
  "CMakeFiles/pfs_policies_test.dir/pfs_policies_test.cpp.o.d"
  "pfs_policies_test"
  "pfs_policies_test.pdb"
  "pfs_policies_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfs_policies_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
