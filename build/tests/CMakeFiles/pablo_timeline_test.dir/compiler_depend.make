# Empty compiler generated dependencies file for pablo_timeline_test.
# This may be replaced when dependencies are built.
