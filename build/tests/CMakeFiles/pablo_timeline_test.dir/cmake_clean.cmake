file(REMOVE_RECURSE
  "CMakeFiles/pablo_timeline_test.dir/pablo_timeline_test.cpp.o"
  "CMakeFiles/pablo_timeline_test.dir/pablo_timeline_test.cpp.o.d"
  "pablo_timeline_test"
  "pablo_timeline_test.pdb"
  "pablo_timeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pablo_timeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
