# Empty dependencies file for machine_network_test.
# This may be replaced when dependencies are built.
