file(REMOVE_RECURSE
  "CMakeFiles/machine_network_test.dir/machine_network_test.cpp.o"
  "CMakeFiles/machine_network_test.dir/machine_network_test.cpp.o.d"
  "machine_network_test"
  "machine_network_test.pdb"
  "machine_network_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machine_network_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
