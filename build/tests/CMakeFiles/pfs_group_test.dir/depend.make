# Empty dependencies file for pfs_group_test.
# This may be replaced when dependencies are built.
