file(REMOVE_RECURSE
  "CMakeFiles/pfs_group_test.dir/pfs_group_test.cpp.o"
  "CMakeFiles/pfs_group_test.dir/pfs_group_test.cpp.o.d"
  "pfs_group_test"
  "pfs_group_test.pdb"
  "pfs_group_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfs_group_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
