# Empty compiler generated dependencies file for pablo_cdf_test.
# This may be replaced when dependencies are built.
