file(REMOVE_RECURSE
  "CMakeFiles/pablo_cdf_test.dir/pablo_cdf_test.cpp.o"
  "CMakeFiles/pablo_cdf_test.dir/pablo_cdf_test.cpp.o.d"
  "pablo_cdf_test"
  "pablo_cdf_test.pdb"
  "pablo_cdf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pablo_cdf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
