file(REMOVE_RECURSE
  "CMakeFiles/pfs_content_test.dir/pfs_content_test.cpp.o"
  "CMakeFiles/pfs_content_test.dir/pfs_content_test.cpp.o.d"
  "pfs_content_test"
  "pfs_content_test.pdb"
  "pfs_content_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfs_content_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
