# Empty dependencies file for pfs_stripe_test.
# This may be replaced when dependencies are built.
