file(REMOVE_RECURSE
  "CMakeFiles/pfs_stripe_test.dir/pfs_stripe_test.cpp.o"
  "CMakeFiles/pfs_stripe_test.dir/pfs_stripe_test.cpp.o.d"
  "pfs_stripe_test"
  "pfs_stripe_test.pdb"
  "pfs_stripe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfs_stripe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
