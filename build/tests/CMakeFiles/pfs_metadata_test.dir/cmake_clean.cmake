file(REMOVE_RECURSE
  "CMakeFiles/pfs_metadata_test.dir/pfs_metadata_test.cpp.o"
  "CMakeFiles/pfs_metadata_test.dir/pfs_metadata_test.cpp.o.d"
  "pfs_metadata_test"
  "pfs_metadata_test.pdb"
  "pfs_metadata_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfs_metadata_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
