file(REMOVE_RECURSE
  "CMakeFiles/pfs_modes_test.dir/pfs_modes_test.cpp.o"
  "CMakeFiles/pfs_modes_test.dir/pfs_modes_test.cpp.o.d"
  "pfs_modes_test"
  "pfs_modes_test.pdb"
  "pfs_modes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfs_modes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
