# Empty dependencies file for pfs_modes_test.
# This may be replaced when dependencies are built.
