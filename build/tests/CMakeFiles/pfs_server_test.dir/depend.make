# Empty dependencies file for pfs_server_test.
# This may be replaced when dependencies are built.
