file(REMOVE_RECURSE
  "CMakeFiles/pfs_server_test.dir/pfs_server_test.cpp.o"
  "CMakeFiles/pfs_server_test.dir/pfs_server_test.cpp.o.d"
  "pfs_server_test"
  "pfs_server_test.pdb"
  "pfs_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfs_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
