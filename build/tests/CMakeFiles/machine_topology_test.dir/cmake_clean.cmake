file(REMOVE_RECURSE
  "CMakeFiles/machine_topology_test.dir/machine_topology_test.cpp.o"
  "CMakeFiles/machine_topology_test.dir/machine_topology_test.cpp.o.d"
  "machine_topology_test"
  "machine_topology_test.pdb"
  "machine_topology_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machine_topology_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
