# Empty dependencies file for pablo_summary_test.
# This may be replaced when dependencies are built.
