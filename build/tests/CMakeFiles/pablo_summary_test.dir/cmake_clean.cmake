file(REMOVE_RECURSE
  "CMakeFiles/pablo_summary_test.dir/pablo_summary_test.cpp.o"
  "CMakeFiles/pablo_summary_test.dir/pablo_summary_test.cpp.o.d"
  "pablo_summary_test"
  "pablo_summary_test.pdb"
  "pablo_summary_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pablo_summary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
