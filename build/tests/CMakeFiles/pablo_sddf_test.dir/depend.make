# Empty dependencies file for pablo_sddf_test.
# This may be replaced when dependencies are built.
