file(REMOVE_RECURSE
  "CMakeFiles/pablo_sddf_test.dir/pablo_sddf_test.cpp.o"
  "CMakeFiles/pablo_sddf_test.dir/pablo_sddf_test.cpp.o.d"
  "pablo_sddf_test"
  "pablo_sddf_test.pdb"
  "pablo_sddf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pablo_sddf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
