file(REMOVE_RECURSE
  "CMakeFiles/pfs_client_test.dir/pfs_client_test.cpp.o"
  "CMakeFiles/pfs_client_test.dir/pfs_client_test.cpp.o.d"
  "pfs_client_test"
  "pfs_client_test.pdb"
  "pfs_client_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfs_client_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
