# Empty dependencies file for pfs_client_test.
# This may be replaced when dependencies are built.
