file(REMOVE_RECURSE
  "CMakeFiles/apps_escat_test.dir/apps_escat_test.cpp.o"
  "CMakeFiles/apps_escat_test.dir/apps_escat_test.cpp.o.d"
  "apps_escat_test"
  "apps_escat_test.pdb"
  "apps_escat_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_escat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
