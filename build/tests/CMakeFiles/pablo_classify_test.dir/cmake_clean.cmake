file(REMOVE_RECURSE
  "CMakeFiles/pablo_classify_test.dir/pablo_classify_test.cpp.o"
  "CMakeFiles/pablo_classify_test.dir/pablo_classify_test.cpp.o.d"
  "pablo_classify_test"
  "pablo_classify_test.pdb"
  "pablo_classify_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pablo_classify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
