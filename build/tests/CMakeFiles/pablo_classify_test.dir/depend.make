# Empty dependencies file for pablo_classify_test.
# This may be replaced when dependencies are built.
