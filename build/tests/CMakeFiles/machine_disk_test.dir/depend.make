# Empty dependencies file for machine_disk_test.
# This may be replaced when dependencies are built.
