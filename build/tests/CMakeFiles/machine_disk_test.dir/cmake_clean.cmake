file(REMOVE_RECURSE
  "CMakeFiles/machine_disk_test.dir/machine_disk_test.cpp.o"
  "CMakeFiles/machine_disk_test.dir/machine_disk_test.cpp.o.d"
  "machine_disk_test"
  "machine_disk_test.pdb"
  "machine_disk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machine_disk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
