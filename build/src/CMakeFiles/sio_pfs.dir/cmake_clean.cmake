file(REMOVE_RECURSE
  "CMakeFiles/sio_pfs.dir/pfs/client.cpp.o"
  "CMakeFiles/sio_pfs.dir/pfs/client.cpp.o.d"
  "CMakeFiles/sio_pfs.dir/pfs/content.cpp.o"
  "CMakeFiles/sio_pfs.dir/pfs/content.cpp.o.d"
  "CMakeFiles/sio_pfs.dir/pfs/metadata.cpp.o"
  "CMakeFiles/sio_pfs.dir/pfs/metadata.cpp.o.d"
  "CMakeFiles/sio_pfs.dir/pfs/pfs.cpp.o"
  "CMakeFiles/sio_pfs.dir/pfs/pfs.cpp.o.d"
  "CMakeFiles/sio_pfs.dir/pfs/policies.cpp.o"
  "CMakeFiles/sio_pfs.dir/pfs/policies.cpp.o.d"
  "CMakeFiles/sio_pfs.dir/pfs/server.cpp.o"
  "CMakeFiles/sio_pfs.dir/pfs/server.cpp.o.d"
  "CMakeFiles/sio_pfs.dir/pfs/stripe.cpp.o"
  "CMakeFiles/sio_pfs.dir/pfs/stripe.cpp.o.d"
  "libsio_pfs.a"
  "libsio_pfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sio_pfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
