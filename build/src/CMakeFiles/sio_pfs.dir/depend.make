# Empty dependencies file for sio_pfs.
# This may be replaced when dependencies are built.
