
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pfs/client.cpp" "src/CMakeFiles/sio_pfs.dir/pfs/client.cpp.o" "gcc" "src/CMakeFiles/sio_pfs.dir/pfs/client.cpp.o.d"
  "/root/repo/src/pfs/content.cpp" "src/CMakeFiles/sio_pfs.dir/pfs/content.cpp.o" "gcc" "src/CMakeFiles/sio_pfs.dir/pfs/content.cpp.o.d"
  "/root/repo/src/pfs/metadata.cpp" "src/CMakeFiles/sio_pfs.dir/pfs/metadata.cpp.o" "gcc" "src/CMakeFiles/sio_pfs.dir/pfs/metadata.cpp.o.d"
  "/root/repo/src/pfs/pfs.cpp" "src/CMakeFiles/sio_pfs.dir/pfs/pfs.cpp.o" "gcc" "src/CMakeFiles/sio_pfs.dir/pfs/pfs.cpp.o.d"
  "/root/repo/src/pfs/policies.cpp" "src/CMakeFiles/sio_pfs.dir/pfs/policies.cpp.o" "gcc" "src/CMakeFiles/sio_pfs.dir/pfs/policies.cpp.o.d"
  "/root/repo/src/pfs/server.cpp" "src/CMakeFiles/sio_pfs.dir/pfs/server.cpp.o" "gcc" "src/CMakeFiles/sio_pfs.dir/pfs/server.cpp.o.d"
  "/root/repo/src/pfs/stripe.cpp" "src/CMakeFiles/sio_pfs.dir/pfs/stripe.cpp.o" "gcc" "src/CMakeFiles/sio_pfs.dir/pfs/stripe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sio_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sio_pablo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sio_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
