file(REMOVE_RECURSE
  "libsio_pfs.a"
)
