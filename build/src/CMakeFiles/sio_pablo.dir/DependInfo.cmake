
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pablo/aggregate.cpp" "src/CMakeFiles/sio_pablo.dir/pablo/aggregate.cpp.o" "gcc" "src/CMakeFiles/sio_pablo.dir/pablo/aggregate.cpp.o.d"
  "/root/repo/src/pablo/cdf.cpp" "src/CMakeFiles/sio_pablo.dir/pablo/cdf.cpp.o" "gcc" "src/CMakeFiles/sio_pablo.dir/pablo/cdf.cpp.o.d"
  "/root/repo/src/pablo/classify.cpp" "src/CMakeFiles/sio_pablo.dir/pablo/classify.cpp.o" "gcc" "src/CMakeFiles/sio_pablo.dir/pablo/classify.cpp.o.d"
  "/root/repo/src/pablo/collector.cpp" "src/CMakeFiles/sio_pablo.dir/pablo/collector.cpp.o" "gcc" "src/CMakeFiles/sio_pablo.dir/pablo/collector.cpp.o.d"
  "/root/repo/src/pablo/report.cpp" "src/CMakeFiles/sio_pablo.dir/pablo/report.cpp.o" "gcc" "src/CMakeFiles/sio_pablo.dir/pablo/report.cpp.o.d"
  "/root/repo/src/pablo/sddf.cpp" "src/CMakeFiles/sio_pablo.dir/pablo/sddf.cpp.o" "gcc" "src/CMakeFiles/sio_pablo.dir/pablo/sddf.cpp.o.d"
  "/root/repo/src/pablo/summary.cpp" "src/CMakeFiles/sio_pablo.dir/pablo/summary.cpp.o" "gcc" "src/CMakeFiles/sio_pablo.dir/pablo/summary.cpp.o.d"
  "/root/repo/src/pablo/timeline.cpp" "src/CMakeFiles/sio_pablo.dir/pablo/timeline.cpp.o" "gcc" "src/CMakeFiles/sio_pablo.dir/pablo/timeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sio_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
