# Empty dependencies file for sio_pablo.
# This may be replaced when dependencies are built.
