file(REMOVE_RECURSE
  "libsio_pablo.a"
)
