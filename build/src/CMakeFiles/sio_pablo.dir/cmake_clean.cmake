file(REMOVE_RECURSE
  "CMakeFiles/sio_pablo.dir/pablo/aggregate.cpp.o"
  "CMakeFiles/sio_pablo.dir/pablo/aggregate.cpp.o.d"
  "CMakeFiles/sio_pablo.dir/pablo/cdf.cpp.o"
  "CMakeFiles/sio_pablo.dir/pablo/cdf.cpp.o.d"
  "CMakeFiles/sio_pablo.dir/pablo/classify.cpp.o"
  "CMakeFiles/sio_pablo.dir/pablo/classify.cpp.o.d"
  "CMakeFiles/sio_pablo.dir/pablo/collector.cpp.o"
  "CMakeFiles/sio_pablo.dir/pablo/collector.cpp.o.d"
  "CMakeFiles/sio_pablo.dir/pablo/report.cpp.o"
  "CMakeFiles/sio_pablo.dir/pablo/report.cpp.o.d"
  "CMakeFiles/sio_pablo.dir/pablo/sddf.cpp.o"
  "CMakeFiles/sio_pablo.dir/pablo/sddf.cpp.o.d"
  "CMakeFiles/sio_pablo.dir/pablo/summary.cpp.o"
  "CMakeFiles/sio_pablo.dir/pablo/summary.cpp.o.d"
  "CMakeFiles/sio_pablo.dir/pablo/timeline.cpp.o"
  "CMakeFiles/sio_pablo.dir/pablo/timeline.cpp.o.d"
  "libsio_pablo.a"
  "libsio_pablo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sio_pablo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
