file(REMOVE_RECURSE
  "CMakeFiles/sio_sim.dir/sim/engine.cpp.o"
  "CMakeFiles/sio_sim.dir/sim/engine.cpp.o.d"
  "CMakeFiles/sio_sim.dir/sim/random.cpp.o"
  "CMakeFiles/sio_sim.dir/sim/random.cpp.o.d"
  "CMakeFiles/sio_sim.dir/sim/sync.cpp.o"
  "CMakeFiles/sio_sim.dir/sim/sync.cpp.o.d"
  "libsio_sim.a"
  "libsio_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sio_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
