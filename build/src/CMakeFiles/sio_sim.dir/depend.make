# Empty dependencies file for sio_sim.
# This may be replaced when dependencies are built.
