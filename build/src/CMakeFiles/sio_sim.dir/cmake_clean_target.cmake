file(REMOVE_RECURSE
  "libsio_sim.a"
)
