file(REMOVE_RECURSE
  "CMakeFiles/sio_hw.dir/machine/disk.cpp.o"
  "CMakeFiles/sio_hw.dir/machine/disk.cpp.o.d"
  "CMakeFiles/sio_hw.dir/machine/machine.cpp.o"
  "CMakeFiles/sio_hw.dir/machine/machine.cpp.o.d"
  "CMakeFiles/sio_hw.dir/machine/network.cpp.o"
  "CMakeFiles/sio_hw.dir/machine/network.cpp.o.d"
  "CMakeFiles/sio_hw.dir/machine/os_profile.cpp.o"
  "CMakeFiles/sio_hw.dir/machine/os_profile.cpp.o.d"
  "CMakeFiles/sio_hw.dir/machine/topology.cpp.o"
  "CMakeFiles/sio_hw.dir/machine/topology.cpp.o.d"
  "libsio_hw.a"
  "libsio_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sio_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
