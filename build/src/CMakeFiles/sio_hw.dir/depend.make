# Empty dependencies file for sio_hw.
# This may be replaced when dependencies are built.
