
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/machine/disk.cpp" "src/CMakeFiles/sio_hw.dir/machine/disk.cpp.o" "gcc" "src/CMakeFiles/sio_hw.dir/machine/disk.cpp.o.d"
  "/root/repo/src/machine/machine.cpp" "src/CMakeFiles/sio_hw.dir/machine/machine.cpp.o" "gcc" "src/CMakeFiles/sio_hw.dir/machine/machine.cpp.o.d"
  "/root/repo/src/machine/network.cpp" "src/CMakeFiles/sio_hw.dir/machine/network.cpp.o" "gcc" "src/CMakeFiles/sio_hw.dir/machine/network.cpp.o.d"
  "/root/repo/src/machine/os_profile.cpp" "src/CMakeFiles/sio_hw.dir/machine/os_profile.cpp.o" "gcc" "src/CMakeFiles/sio_hw.dir/machine/os_profile.cpp.o.d"
  "/root/repo/src/machine/topology.cpp" "src/CMakeFiles/sio_hw.dir/machine/topology.cpp.o" "gcc" "src/CMakeFiles/sio_hw.dir/machine/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sio_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
