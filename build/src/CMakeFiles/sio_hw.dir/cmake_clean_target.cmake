file(REMOVE_RECURSE
  "libsio_hw.a"
)
