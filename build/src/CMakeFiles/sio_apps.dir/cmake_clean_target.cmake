file(REMOVE_RECURSE
  "libsio_apps.a"
)
