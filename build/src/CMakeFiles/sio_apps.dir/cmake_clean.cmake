file(REMOVE_RECURSE
  "CMakeFiles/sio_apps.dir/apps/common.cpp.o"
  "CMakeFiles/sio_apps.dir/apps/common.cpp.o.d"
  "CMakeFiles/sio_apps.dir/apps/escat.cpp.o"
  "CMakeFiles/sio_apps.dir/apps/escat.cpp.o.d"
  "CMakeFiles/sio_apps.dir/apps/prism.cpp.o"
  "CMakeFiles/sio_apps.dir/apps/prism.cpp.o.d"
  "libsio_apps.a"
  "libsio_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sio_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
