# Empty dependencies file for sio_apps.
# This may be replaced when dependencies are built.
