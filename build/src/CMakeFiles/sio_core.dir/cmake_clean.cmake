file(REMOVE_RECURSE
  "CMakeFiles/sio_core.dir/core/experiment.cpp.o"
  "CMakeFiles/sio_core.dir/core/experiment.cpp.o.d"
  "CMakeFiles/sio_core.dir/core/figures.cpp.o"
  "CMakeFiles/sio_core.dir/core/figures.cpp.o.d"
  "libsio_core.a"
  "libsio_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sio_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
