# Empty dependencies file for sio_core.
# This may be replaced when dependencies are built.
