file(REMOVE_RECURSE
  "libsio_core.a"
)
