file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_escat_iotime.dir/bench_table2_escat_iotime.cpp.o"
  "CMakeFiles/bench_table2_escat_iotime.dir/bench_table2_escat_iotime.cpp.o.d"
  "bench_table2_escat_iotime"
  "bench_table2_escat_iotime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_escat_iotime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
