# Empty dependencies file for bench_table2_escat_iotime.
# This may be replaced when dependencies are built.
