# Empty dependencies file for bench_table1_escat_modes.
# This may be replaced when dependencies are built.
