# Empty dependencies file for bench_table5_prism_iotime.
# This may be replaced when dependencies are built.
