file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_prism_iotime.dir/bench_table5_prism_iotime.cpp.o"
  "CMakeFiles/bench_table5_prism_iotime.dir/bench_table5_prism_iotime.cpp.o.d"
  "bench_table5_prism_iotime"
  "bench_table5_prism_iotime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_prism_iotime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
