# Empty compiler generated dependencies file for bench_fig4_escat_write_timeline.
# This may be replaced when dependencies are built.
