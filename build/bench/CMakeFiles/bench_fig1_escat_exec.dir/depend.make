# Empty dependencies file for bench_fig1_escat_exec.
# This may be replaced when dependencies are built.
