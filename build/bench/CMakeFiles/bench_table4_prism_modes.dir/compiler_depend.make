# Empty compiler generated dependencies file for bench_table4_prism_modes.
# This may be replaced when dependencies are built.
