file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_prism_exec.dir/bench_fig6_prism_exec.cpp.o"
  "CMakeFiles/bench_fig6_prism_exec.dir/bench_fig6_prism_exec.cpp.o.d"
  "bench_fig6_prism_exec"
  "bench_fig6_prism_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_prism_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
