# Empty compiler generated dependencies file for bench_fig6_prism_exec.
# This may be replaced when dependencies are built.
