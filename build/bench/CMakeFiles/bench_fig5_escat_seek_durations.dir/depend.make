# Empty dependencies file for bench_fig5_escat_seek_durations.
# This may be replaced when dependencies are built.
