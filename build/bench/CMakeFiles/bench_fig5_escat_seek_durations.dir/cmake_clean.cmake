file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_escat_seek_durations.dir/bench_fig5_escat_seek_durations.cpp.o"
  "CMakeFiles/bench_fig5_escat_seek_durations.dir/bench_fig5_escat_seek_durations.cpp.o.d"
  "bench_fig5_escat_seek_durations"
  "bench_fig5_escat_seek_durations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_escat_seek_durations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
