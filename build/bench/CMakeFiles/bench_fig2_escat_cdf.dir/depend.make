# Empty dependencies file for bench_fig2_escat_cdf.
# This may be replaced when dependencies are built.
