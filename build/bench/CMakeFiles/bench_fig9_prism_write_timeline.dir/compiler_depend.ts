# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bench_fig9_prism_write_timeline.
