# Empty dependencies file for bench_fig9_prism_write_timeline.
# This may be replaced when dependencies are built.
