file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_prism_read_timeline.dir/bench_fig8_prism_read_timeline.cpp.o"
  "CMakeFiles/bench_fig8_prism_read_timeline.dir/bench_fig8_prism_read_timeline.cpp.o.d"
  "bench_fig8_prism_read_timeline"
  "bench_fig8_prism_read_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_prism_read_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
