# Empty compiler generated dependencies file for bench_fig8_prism_read_timeline.
# This may be replaced when dependencies are built.
