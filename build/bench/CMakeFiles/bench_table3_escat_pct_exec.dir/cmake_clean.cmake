file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_escat_pct_exec.dir/bench_table3_escat_pct_exec.cpp.o"
  "CMakeFiles/bench_table3_escat_pct_exec.dir/bench_table3_escat_pct_exec.cpp.o.d"
  "bench_table3_escat_pct_exec"
  "bench_table3_escat_pct_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_escat_pct_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
