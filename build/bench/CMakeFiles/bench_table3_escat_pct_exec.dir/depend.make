# Empty dependencies file for bench_table3_escat_pct_exec.
# This may be replaced when dependencies are built.
