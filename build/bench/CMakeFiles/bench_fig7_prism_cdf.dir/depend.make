# Empty dependencies file for bench_fig7_prism_cdf.
# This may be replaced when dependencies are built.
