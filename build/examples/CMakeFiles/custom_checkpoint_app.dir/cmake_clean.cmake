file(REMOVE_RECURSE
  "CMakeFiles/custom_checkpoint_app.dir/custom_checkpoint_app.cpp.o"
  "CMakeFiles/custom_checkpoint_app.dir/custom_checkpoint_app.cpp.o.d"
  "custom_checkpoint_app"
  "custom_checkpoint_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_checkpoint_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
