# Empty dependencies file for prism_evolution.
# This may be replaced when dependencies are built.
