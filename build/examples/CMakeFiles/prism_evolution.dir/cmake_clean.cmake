file(REMOVE_RECURSE
  "CMakeFiles/prism_evolution.dir/prism_evolution.cpp.o"
  "CMakeFiles/prism_evolution.dir/prism_evolution.cpp.o.d"
  "prism_evolution"
  "prism_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prism_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
