file(REMOVE_RECURSE
  "CMakeFiles/escat_evolution.dir/escat_evolution.cpp.o"
  "CMakeFiles/escat_evolution.dir/escat_evolution.cpp.o.d"
  "escat_evolution"
  "escat_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/escat_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
