# Empty compiler generated dependencies file for escat_evolution.
# This may be replaced when dependencies are built.
