# Empty dependencies file for escat_evolution.
# This may be replaced when dependencies are built.
